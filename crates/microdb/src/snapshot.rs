//! Durable snapshots: a stable on-disk encoding of a whole database.
//!
//! A [`Snapshot`] captures every table **including its bookkeeping** —
//! schema, rows, hash-index declarations, the auto-increment cursor,
//! and crucially the monotonic [`Table::generation`] write stamp — so
//! a restored database is *operationally* identical to the original,
//! not merely row-equal: caching layers keyed on generation stamps
//! (the FORM's decode cache) can revalidate instead of flushing, and
//! the [write log](crate::wal) can tell which of its records a
//! snapshot already contains.
//!
//! [`Database::snapshot`] takes `&self`: it acquires each table's
//! read lock in turn, so every *table* is internally consistent even
//! under concurrent writers. Cross-table consistency (no table
//! reflecting a write that another table's copy predates) is the
//! caller's responsibility — the executor's quiescent-point hook
//! holds all request-level table locks shared while snapshotting.
//!
//! The text format is line-oriented and versioned; values are encoded
//! as whitespace-free tokens ([`encode_value`]) so rows can be framed
//! by tabs and records by newlines:
//!
//! ```text
//! microdb-snapshot v1 <n-tables>
//! table <name>
//! meta <generation> <next_auto>
//! columns <n>
//! c <TYPE> <nullable 0|1> <auto 0|1> <name>
//! indexes <n>
//! x <column>
//! rows <n>
//! r <value>\t<value>…
//! end
//! ```

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::RwLock;

use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::schema::{ColumnDef, Schema};
use crate::table::{Row, Table};
use crate::value::{ColumnType, Value};

/// Escapes a string into a whitespace-free token: short backslash
/// escapes for `\\`, space, tab, CR, LF, and `\x<hex>;` for **every
/// other Unicode whitespace character** (NBSP, vertical tab, line
/// separator, …) — the log and checkpoint decoders tokenize with
/// `split_whitespace`, which splits on all of `char::is_whitespace`,
/// so a single unescaped exotic space would shear a record in two.
/// The empty string encodes as `\e` so every token is at least one
/// character.
#[must_use]
pub fn escape_token(s: &str) -> String {
    use std::fmt::Write as _;
    if s.is_empty() {
        return "\\e".to_owned();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c if c.is_whitespace() => {
                let _ = write!(out, "\\x{:x};", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_token`].
///
/// # Errors
///
/// [`DbError::Persist`] on a dangling or unknown escape.
pub fn unescape_token(s: &str) -> DbResult<String> {
    if s == "\\e" {
        return Ok(String::new());
    }
    let bad = |what: &str| DbError::Persist(format!("bad escape in token {s:?}: {what}"));
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('x') => {
                let hex: String = chars.by_ref().take_while(|&c| c != ';').collect();
                let c = u32::from_str_radix(&hex, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| bad("\\x with invalid code point"))?;
                out.push(c);
            }
            other => {
                return Err(bad(&format!(
                    "\\{}",
                    other.map_or_else(String::new, |c| c.to_string())
                )))
            }
        }
    }
    Ok(out)
}

/// Encodes a cell value as a single whitespace-free token: `~` NULL,
/// `T`/`F` booleans, `i<decimal>` integers, `f<bits-hex>` floats
/// (exact, via the IEEE bit pattern), `s<escaped>` strings.
#[must_use]
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "~".to_owned(),
        Value::Bool(true) => "T".to_owned(),
        Value::Bool(false) => "F".to_owned(),
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) => format!("f{:016x}", f.to_bits()),
        Value::Str(s) => format!("s{}", escape_token(s)),
    }
}

/// Inverse of [`encode_value`].
///
/// # Errors
///
/// [`DbError::Persist`] on malformed tokens.
pub fn decode_value(token: &str) -> DbResult<Value> {
    let bad = || DbError::Persist(format!("bad value token {token:?}"));
    match token.split_at_checked(1) {
        Some(("~", "")) => Ok(Value::Null),
        Some(("T", "")) => Ok(Value::Bool(true)),
        Some(("F", "")) => Ok(Value::Bool(false)),
        Some(("i", rest)) => rest.parse().map(Value::Int).map_err(|_| bad()),
        Some(("f", rest)) => u64::from_str_radix(rest, 16)
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .map_err(|_| bad()),
        Some(("s", rest)) => unescape_token(rest).map(Value::Str),
        _ => Err(bad()),
    }
}

/// The captured state of one table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Column definitions, in schema order.
    pub columns: Vec<ColumnDef>,
    /// Names of columns with declared hash indexes.
    pub indexes: Vec<String>,
    /// The monotonic write stamp at capture time.
    pub generation: u64,
    /// The auto-increment cursor at capture time.
    pub next_auto: i64,
    /// Every physical row, in storage order.
    pub rows: Vec<Row>,
}

/// A captured database: every table's [`TableSnapshot`], in name
/// order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// The captured tables.
    pub tables: Vec<TableSnapshot>,
}

impl Snapshot {
    /// The captured state of one table, by name.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&TableSnapshot> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total physical rows across all captured tables.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// Serializes the snapshot to a writer in the versioned text
    /// format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        writeln!(out, "microdb-snapshot v1 {}", self.tables.len())?;
        for t in &self.tables {
            writeln!(out, "table {}", escape_token(&t.name))?;
            writeln!(out, "meta {} {}", t.generation, t.next_auto)?;
            writeln!(out, "columns {}", t.columns.len())?;
            for c in &t.columns {
                writeln!(out, "c {}", encode_column(c))?;
            }
            writeln!(out, "indexes {}", t.indexes.len())?;
            for x in &t.indexes {
                writeln!(out, "x {}", escape_token(x))?;
            }
            writeln!(out, "rows {}", t.rows.len())?;
            for row in &t.rows {
                let encoded: Vec<String> = row.iter().map(encode_value).collect();
                writeln!(out, "r {}", encoded.join("\t"))?;
            }
            writeln!(out, "end")?;
        }
        Ok(())
    }

    /// Parses a snapshot from a reader.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] on framing violations; I/O errors are
    /// wrapped in the same variant.
    pub fn read_from(input: &mut impl BufRead) -> DbResult<Snapshot> {
        let mut lines = input.lines();
        let mut next_line = move || -> DbResult<String> {
            lines
                .next()
                .ok_or_else(|| DbError::Persist("truncated snapshot".into()))?
                .map_err(|e| DbError::Persist(format!("read error: {e}")))
        };
        let header = next_line()?;
        let n_tables: usize = header
            .strip_prefix("microdb-snapshot v1 ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| DbError::Persist(format!("bad snapshot header {header:?}")))?;
        let field = |line: &str, prefix: &str| -> DbResult<String> {
            line.strip_prefix(prefix)
                .map(str::to_owned)
                .ok_or_else(|| DbError::Persist(format!("expected {prefix:?} line, got {line:?}")))
        };
        let count = |line: &str, prefix: &str| -> DbResult<usize> {
            field(line, prefix)?
                .parse()
                .map_err(|_| DbError::Persist(format!("bad count line {line:?}")))
        };
        let mut snapshot = Snapshot::default();
        for _ in 0..n_tables {
            let name = unescape_token(&field(&next_line()?, "table ")?)?;
            let meta = field(&next_line()?, "meta ")?;
            let (generation, next_auto) = meta
                .split_once(' ')
                .and_then(|(g, a)| Some((g.parse().ok()?, a.parse().ok()?)))
                .ok_or_else(|| DbError::Persist(format!("bad meta line {meta:?}")))?;
            let n_columns = count(&next_line()?, "columns ")?;
            let mut columns = Vec::with_capacity(n_columns);
            for _ in 0..n_columns {
                columns.push(parse_column(&field(&next_line()?, "c ")?)?);
            }
            let n_indexes = count(&next_line()?, "indexes ")?;
            let mut indexes = Vec::with_capacity(n_indexes);
            for _ in 0..n_indexes {
                indexes.push(unescape_token(&field(&next_line()?, "x ")?)?);
            }
            let n_rows = count(&next_line()?, "rows ")?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let line = next_line()?;
                let payload = field(&line, "r ")?;
                let row: DbResult<Row> = payload.split('\t').map(decode_value).collect();
                rows.push(row?);
            }
            let endline = next_line()?;
            if endline != "end" {
                return Err(DbError::Persist(format!(
                    "expected \"end\", got {endline:?}"
                )));
            }
            snapshot.tables.push(TableSnapshot {
                name,
                columns,
                indexes,
                generation,
                next_auto,
                rows,
            });
        }
        Ok(snapshot)
    }
}

/// Renders one column definition as the space-separated token run
/// used after a `c ` prefix in the snapshot and chunked-manifest
/// formats: `TYPE nullable auto name`.
#[must_use]
pub fn encode_column(c: &ColumnDef) -> String {
    format!(
        "{} {} {} {}",
        c.column_type(),
        u8::from(c.is_nullable()),
        u8::from(c.is_auto_increment()),
        escape_token(c.name())
    )
}

/// Parses the token run produced by [`encode_column`].
///
/// # Errors
///
/// [`DbError::Persist`] on any malformed field.
pub fn parse_column(spec: &str) -> DbResult<ColumnDef> {
    let bad = || DbError::Persist(format!("bad column line {spec:?}"));
    let mut parts = spec.splitn(4, ' ');
    let ty = match parts.next().ok_or_else(bad)? {
        "BOOL" => ColumnType::Bool,
        "INT" => ColumnType::Int,
        "FLOAT" => ColumnType::Float,
        "TEXT" => ColumnType::Str,
        _ => return Err(bad()),
    };
    let nullable = parts.next() == Some("1");
    let auto = {
        let tok = parts.next().ok_or_else(bad)?;
        tok == "1"
    };
    let name = unescape_token(parts.next().ok_or_else(bad)?)?;
    let mut def = ColumnDef::new(&name, ty);
    if nullable {
        def = def.nullable();
    }
    if auto {
        def = def.auto_increment();
    }
    Ok(def)
}

impl Database {
    /// Captures every table under its read lock. Each table is
    /// internally consistent; callers needing a cross-table-consistent
    /// point must block writers for the duration (see the module
    /// docs).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            tables: self
                .table_names()
                .iter()
                .map(|name| {
                    let t = self.table(name).expect("listed table exists");
                    TableSnapshot {
                        name: (*name).to_owned(),
                        columns: t.schema().columns().to_vec(),
                        indexes: t
                            .indexed_columns()
                            .iter()
                            .map(|c| (*c).to_owned())
                            .collect(),
                        generation: t.generation(),
                        next_auto: t.next_auto(),
                        rows: t.rows().to_vec(),
                    }
                })
                .collect(),
        }
    }

    /// Replaces this database's entire contents with a snapshot's,
    /// preserving generation stamps and auto-increment cursors (the
    /// restored database is operationally identical to the captured
    /// one). Structural, hence `&mut self`; any attached write log
    /// stays attached.
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] / validation errors if the snapshot is
    /// internally inconsistent (a row not matching its schema, an
    /// index on a missing column). On error the database is left
    /// unchanged.
    pub fn restore(&mut self, snapshot: &Snapshot) -> DbResult<()> {
        let mut tables = BTreeMap::new();
        for ts in &snapshot.tables {
            let mut table = Table::from_parts(
                &ts.name,
                Schema::new(ts.columns.clone()),
                ts.rows.clone(),
                ts.next_auto,
                ts.generation,
            )?;
            for col in &ts.indexes {
                table.create_index(col)?;
            }
            if tables.insert(ts.name.clone(), RwLock::new(table)).is_some() {
                return Err(DbError::Persist(format!(
                    "snapshot names table {:?} twice",
                    ts.name
                )));
            }
        }
        self.replace_tables(tables);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "people",
            Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("score", ColumnType::Float).nullable(),
                ColumnDef::new("active", ColumnType::Bool),
            ]),
        )
        .unwrap();
        db.create_table(
            "empty",
            Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]),
        )
        .unwrap();
        db.table_mut("people")
            .unwrap()
            .create_index("name")
            .unwrap();
        db.insert(
            "people",
            vec![
                Value::Null,
                Value::from("alice with spaces"),
                Value::Float(1.5),
                Value::Bool(true),
            ],
        )
        .unwrap();
        db.insert(
            "people",
            vec![
                Value::Null,
                Value::from("tab\tnewline\nback\\slash"),
                Value::Null,
                Value::Bool(false),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn value_tokens_round_trip() {
        let values = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(0.1),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Str(String::new()),
            Value::Str("  spaced  out \t\n\\ ".into()),
            // Exotic Unicode whitespace: split_whitespace splits on
            // all of these, so every one must be escaped or a logged
            // record shears in two.
            Value::Str("non\u{a0}breaking\u{2028}line\u{b}vtab\u{3000}ideographic".into()),
        ];
        for v in values {
            let tok = encode_value(&v);
            assert!(
                !tok.chars().any(char::is_whitespace),
                "token {tok:?} contains whitespace"
            );
            let back = decode_value(&tok).unwrap();
            // NaN round-trips bit-exactly; Value's total order treats
            // NaN == NaN, so plain equality suffices.
            assert_eq!(back, v, "{tok}");
            if let (Value::Float(a), Value::Float(b)) = (&v, &back) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact float round trip");
            }
        }
        for bad in ["", "x", "izzz", "fzz", "\\q"] {
            assert!(decode_value(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn snapshot_text_round_trips() {
        let db = sample_db();
        let snap = db.snapshot();
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let parsed = Snapshot::read_from(&mut &buf[..]).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn restore_is_operationally_identical() {
        let db = sample_db();
        let snap = db.snapshot();
        let mut restored = Database::new();
        restored.restore(&snap).unwrap();
        // Rows, generations and auto-increment cursors all match.
        assert_eq!(restored.table_names(), db.table_names());
        for name in db.table_names() {
            let a = db.table(name).unwrap();
            let b = restored.table(name).unwrap();
            assert_eq!(a.rows(), b.rows(), "{name}");
            assert_eq!(a.generation(), b.generation(), "{name}");
            assert_eq!(a.next_auto(), b.next_auto(), "{name}");
        }
        // Index declarations survive: probes answer without a scan.
        assert!(restored
            .table("people")
            .unwrap()
            .index_probe_ref("name", &Value::from("alice with spaces"))
            .is_some());
        // The next insert continues the id sequence.
        restored
            .insert(
                "people",
                vec![Value::Null, "carol".into(), Value::Null, Value::Bool(true)],
            )
            .unwrap();
        let t = restored.table("people").unwrap();
        assert_eq!(t.rows()[2][0], Value::Int(3));
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let mut snap = sample_db().snapshot();
        snap.tables[1].rows.push(vec![Value::from("not an int")]);
        assert!(Database::new().restore(&snap).is_err());
        let mut snap2 = sample_db().snapshot();
        snap2.tables[1].indexes.push("zzz".into());
        assert!(Database::new().restore(&snap2).is_err());
    }

    #[test]
    fn malformed_snapshot_text_is_rejected() {
        for bad in [
            "",
            "microdb-snapshot v2 0",
            "microdb-snapshot v1 1\ntable t\nmeta 0 1\ncolumns 0\nindexes 0\nrows 0\nEND",
            "microdb-snapshot v1 1\ntable t\nmeta x y\ncolumns 0\nindexes 0\nrows 0\nend",
            "microdb-snapshot v1 1",
        ] {
            assert!(Snapshot::read_from(&mut bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn snapshot_takes_shared_access() {
        // &self capture under a concurrently held *read* guard of an
        // unrelated table — snapshot never needs &mut.
        let db = sample_db();
        let held = db.table("empty").unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.tables.len(), 2);
        drop(held);
    }
}
