//! The database: a named collection of tables behind per-table locks.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{DbError, DbResult};
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;
use crate::wal::{Statement, WriteLog};

/// Shared (read) access to one table.
pub type TableRef<'a> = RwLockReadGuard<'a, Table>;
/// Exclusive (write) access to one table.
pub type TableMut<'a> = RwLockWriteGuard<'a, Table>;

/// An in-memory relational database.
///
/// # Concurrency
///
/// Storage is sharded at table granularity: every table sits behind
/// its own `RwLock`, so a write to one table never serializes reads
/// (or writes) of another. Row-level mutation therefore takes `&self`
/// — [`Database::insert`], [`Database::update`] and
/// [`Database::delete`] acquire the target table's write lock
/// internally — while *structural* changes ([`Database::create_table`]
/// / [`Database::drop_table`]) still require `&mut self`. Callers that
/// need multi-statement isolation (a reader that must not observe a
/// half-applied multi-table write) coordinate above this layer, e.g.
/// via the executor's footprint locks; the per-table locks here
/// guarantee that individual statements are atomic and that the map
/// of tables itself is never mutated under a reader.
///
/// Lock discipline for callers holding several guards at once (query
/// joins do): per-statement writers only ever hold one table lock at
/// a time, so multi-guard *readers* cannot deadlock against them.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), microdb::DbError> {
/// use microdb::{ColumnDef, ColumnType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_table("t", Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]))?;
/// db.insert("t", vec![Value::Int(1)])?;
/// assert_eq!(db.table("t")?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, RwLock<Table>>,
    /// Optional append-only write log: when attached, every
    /// successful row-level statement appends one durable record (see
    /// [`crate::wal`]).
    wal: Option<Arc<WriteLog>>,
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            tables: self
                .tables
                .iter()
                .map(|(n, t)| (n.clone(), RwLock::new(read_guard(n, t).clone())))
                .collect(),
            // A clone is a divergent copy; sharing the log would
            // interleave two histories into one file.
            wal: None,
        }
    }
}

/// Acquires a read guard, panicking with the table name if a prior
/// writer panicked mid-mutation (the table may be half-written).
fn read_guard<'a>(name: &str, lock: &'a RwLock<Table>) -> RwLockReadGuard<'a, Table> {
    lock.read()
        .unwrap_or_else(|_| panic!("table {name} lock poisoned"))
}

fn write_guard<'a>(name: &str, lock: &'a RwLock<Table>) -> RwLockWriteGuard<'a, Table> {
    lock.write()
        .unwrap_or_else(|_| panic!("table {name} lock poisoned"))
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] if the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        self.tables
            .insert(name.to_owned(), RwLock::new(Table::new(name, schema)));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Shared access to a table (the table's read lock, held for the
    /// guard's lifetime).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn table(&self, name: &str) -> DbResult<TableRef<'_>> {
        self.tables
            .get(name)
            .map(|t| read_guard(name, t))
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Exclusive access to a table (the table's write lock). Note the
    /// `&self` receiver: writes to different tables proceed in
    /// parallel.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn table_mut(&self, name: &str) -> DbResult<TableMut<'_>> {
        self.tables
            .get(name)
            .map(|t| write_guard(name, t))
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Attaches an append-only write log: from now on every
    /// successful row-level statement ([`Database::insert`],
    /// [`Database::update`], [`Database::delete`], and raw per-row
    /// inserts logged by higher layers) appends a durable record.
    pub fn attach_wal(&mut self, wal: Arc<WriteLog>) {
        self.wal = Some(wal);
    }

    /// Detaches the write log, returning it if one was attached.
    pub fn detach_wal(&mut self) -> Option<Arc<WriteLog>> {
        self.wal.take()
    }

    /// The attached write log, if any — higher layers that mutate
    /// tables through raw guards (e.g. the FORM's marshalling loop)
    /// use this to log their per-row inserts under the same table
    /// lock.
    #[must_use]
    pub fn wal(&self) -> Option<&Arc<WriteLog>> {
        self.wal.as_ref()
    }

    /// Appends `stmt` to the attached log (no-op without one).
    ///
    /// # Errors
    ///
    /// [`DbError::Persist`] if the log could not be written — the
    /// statement has been applied but is not durable, which callers
    /// must surface rather than swallow.
    pub fn log_statement(&self, stmt: &Statement, generation: u64) -> DbResult<()> {
        match &self.wal {
            Some(wal) => wal.append(stmt, generation),
            None => Ok(()),
        }
    }

    /// Applies one logged statement *without* re-logging it — the
    /// replay path of [`WriteLog::replay`].
    pub(crate) fn apply_statement(&self, stmt: &Statement) -> DbResult<()> {
        match stmt {
            Statement::Insert { table, row } => {
                self.table_mut(table)?.insert(row.clone())?;
            }
            Statement::Update {
                table,
                pred,
                assignments,
            } => {
                self.update_unlogged(table, pred, assignments)?;
            }
            Statement::Delete { table, pred } => {
                self.delete_unlogged(table, pred)?;
            }
        }
        Ok(())
    }

    /// Whether a table exists.
    #[must_use]
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The write stamp of one table (see [`Table::generation`]).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn generation(&self, table: &str) -> DbResult<u64> {
        Ok(self.table(table)?.generation())
    }

    /// Inserts into an **already write-locked** table and, with a
    /// write log attached, logs the *stored* row (auto-increment
    /// columns resolved) under that same lock — the one place the
    /// replay-determinism contract lives. Callers holding a guard
    /// for a multi-row operation (the FORM's marshalling loop) use
    /// this directly; [`Database::insert`] wraps it.
    ///
    /// # Errors
    ///
    /// Schema-validation errors, or [`DbError::Persist`] if the
    /// applied row could not be logged.
    pub fn insert_into_locked(&self, t: &mut Table, row: Row) -> DbResult<usize> {
        let pos = t.insert(row)?;
        if self.wal.is_some() {
            self.log_statement(
                &Statement::Insert {
                    table: t.name().to_owned(),
                    row: t.rows()[pos].clone(),
                },
                t.generation(),
            )?;
        }
        Ok(pos)
    }

    /// Applies `stmts` to an **already write-locked** table as one
    /// atomic unit: all statements are applied in memory, then the
    /// effective ones (a zero-row update/delete does not bump the
    /// generation and is omitted, mirroring the single-statement
    /// paths) are logged as a *single* batch WAL record. If any
    /// statement fails — or the WAL append does — the table is rolled
    /// back to its pre-batch rows, so neither memory nor the log ever
    /// holds a torn multi-row write. This is what makes a faceted
    /// object save all-or-nothing: after a disk-full fault, reads
    /// serve the intact pre-write state and a restore replays exactly
    /// the writes that were acknowledged.
    ///
    /// # Errors
    ///
    /// The failing statement's error, or [`DbError::Persist`] from
    /// the log append. The table is unchanged on error unless the
    /// rollback window overflowed (batches beyond ~1k rows), which
    /// upgrades the error to a `Persist` describing the overflow.
    pub fn apply_batch_locked(&self, t: &mut Table, stmts: &[Statement]) -> DbResult<()> {
        let g0 = t.generation();
        let mut logged: Vec<Statement> = Vec::with_capacity(stmts.len());
        let result = self
            .apply_batch_statements(t, stmts, &mut logged)
            .and_then(|()| {
                if logged.is_empty() {
                    return Ok(());
                }
                match &self.wal {
                    Some(wal) => wal.append_batch(t.name(), &logged, t.generation()),
                    None => Ok(()),
                }
            });
        if let Err(e) = result {
            if !t.rollback_to(g0) {
                return Err(DbError::Persist(format!(
                    "batch write failed ({e}) and the rollback window overflowed: \
                     in-memory table {} may be ahead of the log",
                    t.name()
                )));
            }
            return Err(e);
        }
        Ok(())
    }

    fn apply_batch_statements(
        &self,
        t: &mut Table,
        stmts: &[Statement],
        logged: &mut Vec<Statement>,
    ) -> DbResult<()> {
        let schema = t.schema().clone();
        for stmt in stmts {
            debug_assert_eq!(stmt.table(), t.name(), "batch statements share one table");
            match stmt {
                Statement::Insert { table, row } => {
                    let pos = t.insert(row.clone())?;
                    // Log the *stored* row (auto-increment resolved)
                    // so replay is deterministic.
                    logged.push(Statement::Insert {
                        table: table.clone(),
                        row: t.rows()[pos].clone(),
                    });
                }
                Statement::Update {
                    pred, assignments, ..
                } => {
                    let mut err = None;
                    let n = t.update_where(
                        |row| match pred.eval(&schema, row) {
                            Ok(b) => b,
                            Err(e) => {
                                err = Some(e);
                                false
                            }
                        },
                        assignments,
                    )?;
                    if let Some(e) = err {
                        return Err(e);
                    }
                    if n > 0 {
                        logged.push(stmt.clone());
                    }
                }
                Statement::Delete { pred, .. } => {
                    let mut err = None;
                    let n = t.delete_where(|row| match pred.eval(&schema, row) {
                        Ok(b) => b,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    if n > 0 {
                        logged.push(stmt.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Inserts a row into `table`, returning its physical position.
    ///
    /// # Errors
    ///
    /// Table lookup and schema validation errors.
    pub fn insert(&self, table: &str, row: Row) -> DbResult<usize> {
        let mut t = self.table_mut(table)?;
        self.insert_into_locked(&mut t, row)
    }

    /// Inserts many rows.
    ///
    /// # Errors
    ///
    /// Stops at the first failing row.
    pub fn insert_many<I: IntoIterator<Item = Row>>(
        &self,
        table: &str,
        rows: I,
    ) -> DbResult<usize> {
        let mut t = self.table_mut(table)?;
        let mut n = 0;
        for r in rows {
            self.insert_into_locked(&mut t, r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Updates rows of `table` matching `pred`; returns the count.
    ///
    /// # Errors
    ///
    /// Table/column resolution, type and predicate-evaluation errors.
    pub fn update(
        &self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> DbResult<usize> {
        self.update_impl(table, pred, assignments, true)
    }

    fn update_unlogged(
        &self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> DbResult<usize> {
        self.update_impl(table, pred, assignments, false)
    }

    fn update_impl(
        &self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
        log: bool,
    ) -> DbResult<usize> {
        let mut t = self.table_mut(table)?;
        let schema = t.schema().clone();
        // Evaluate the predicate outside the row closure so errors
        // surface instead of silently skipping rows.
        let mut err = None;
        let n = t.update_where(
            |row| match pred.eval(&schema, row) {
                Ok(b) => b,
                Err(e) => {
                    err = Some(e);
                    false
                }
            },
            assignments,
        )?;
        if let Some(e) = err {
            return Err(e);
        }
        // A zero-row update does not bump the generation (see
        // `Table::update_where`), so logging it would produce a record
        // that replay always skips — don't.
        if n > 0 && log && self.wal.is_some() {
            self.log_statement(
                &Statement::Update {
                    table: table.to_owned(),
                    pred: pred.clone(),
                    assignments: assignments.to_vec(),
                },
                t.generation(),
            )?;
        }
        Ok(n)
    }

    /// Deletes rows of `table` matching `pred`; returns the count.
    ///
    /// # Errors
    ///
    /// Table resolution and predicate-evaluation errors.
    pub fn delete(&self, table: &str, pred: &Predicate) -> DbResult<usize> {
        self.delete_impl(table, pred, true)
    }

    fn delete_unlogged(&self, table: &str, pred: &Predicate) -> DbResult<usize> {
        self.delete_impl(table, pred, false)
    }

    fn delete_impl(&self, table: &str, pred: &Predicate, log: bool) -> DbResult<usize> {
        let mut t = self.table_mut(table)?;
        let schema = t.schema().clone();
        let mut err = None;
        let n = t.delete_where(|row| match pred.eval(&schema, row) {
            Ok(b) => b,
            Err(e) => {
                err = Some(e);
                false
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        // Mirrors `update_impl`: no generation bump, nothing to log.
        if n > 0 && log && self.wal.is_some() {
            self.log_statement(
                &Statement::Delete {
                    table: table.to_owned(),
                    pred: pred.clone(),
                },
                t.generation(),
            )?;
        }
        Ok(n)
    }

    /// Wholesale table replacement — the restore path of
    /// [`crate::Snapshot`].
    pub(crate) fn replace_tables(&mut self, tables: BTreeMap<String, RwLock<Table>>) {
        self.tables = tables;
    }

    /// Total number of physical rows across all tables (used by the
    /// space-overhead experiments).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables
            .iter()
            .map(|(n, t)| read_guard(n, t).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Operand;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("x", ColumnType::Int),
            ]),
        )
        .unwrap();
        db.insert_many("t", (0..5).map(|i| vec![Value::Null, Value::Int(i)]))
            .unwrap();
        db
    }

    #[test]
    fn create_and_drop() {
        let mut db = db();
        assert!(db.has_table("t"));
        assert!(matches!(
            db.create_table("t", Schema::new(vec![])),
            Err(DbError::TableExists(_))
        ));
        db.drop_table("t").unwrap();
        assert!(!db.has_table("t"));
        assert!(matches!(db.drop_table("t"), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn update_via_predicate() {
        let db = db();
        let n = db
            .update(
                "t",
                &Predicate::ge(Operand::col("x"), Operand::lit(3i64)),
                &[("x".to_owned(), Value::Int(100))],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn delete_via_predicate() {
        let db = db();
        let n = db
            .delete("t", &Predicate::lt(Operand::col("x"), Operand::lit(2i64)))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("t").unwrap().len(), 3);
    }

    #[test]
    fn predicate_errors_propagate() {
        let db = db();
        assert!(db
            .update(
                "t",
                &Predicate::eq(Operand::col("zzz"), Operand::lit(1i64)),
                &[("x".to_owned(), Value::Int(0))],
            )
            .is_err());
        assert!(db
            .delete("t", &Predicate::eq(Operand::col("zzz"), Operand::lit(1i64)))
            .is_err());
    }

    #[test]
    fn table_names_sorted() {
        let mut db = db();
        db.create_table("a", Schema::new(vec![ColumnDef::new("y", ColumnType::Int)]))
            .unwrap();
        assert_eq!(db.table_names(), vec!["a", "t"]);
    }

    #[test]
    fn generation_tracks_writes_per_table() {
        let mut db = db();
        db.create_table("u", Schema::new(vec![ColumnDef::new("y", ColumnType::Int)]))
            .unwrap();
        let gt = db.generation("t").unwrap();
        let gu = db.generation("u").unwrap();
        db.insert("u", vec![Value::Int(1)]).unwrap();
        assert_eq!(db.generation("t").unwrap(), gt, "writes are per-table");
        assert_eq!(db.generation("u").unwrap(), gu + 1);
    }

    #[test]
    fn clone_is_deep() {
        let db = db();
        let copy = db.clone();
        db.insert("t", vec![Value::Null, Value::Int(99)]).unwrap();
        assert_eq!(copy.table("t").unwrap().len(), 5);
        assert_eq!(db.table("t").unwrap().len(), 6);
    }

    #[test]
    fn batch_rolls_back_memory_when_the_wal_append_fails() {
        use crate::faults::{self, FaultKind, FaultPoint};
        use crate::wal::WriteLog;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("microdb_batchfault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let mut db = db();
        db.attach_wal(Arc::new(WriteLog::open(&path).unwrap()));

        // A healthy batch commits atomically: one line, all rows.
        {
            let mut t = db.table_mut("t").unwrap();
            db.apply_batch_locked(
                &mut t,
                &[
                    Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Null, Value::Int(100)],
                    },
                    Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Null, Value::Int(101)],
                    },
                ],
            )
            .unwrap();
        }
        assert_eq!(db.table("t").unwrap().len(), 7);
        let lines = std::fs::read_to_string(&path).unwrap();
        assert_eq!(lines.lines().count(), 1, "one record for the whole batch");

        // Now the append fails: memory must roll back to match the
        // log — no torn object on either side.
        let rows_before = db.table("t").unwrap().rows().to_vec();
        faults::arm_at(FaultPoint::WalAppend, 0, FaultKind::Error, "batchfault");
        let err = {
            let mut t = db.table_mut("t").unwrap();
            db.apply_batch_locked(
                &mut t,
                &[
                    Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Null, Value::Int(200)],
                    },
                    Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Null, Value::Int(201)],
                    },
                ],
            )
            .unwrap_err()
        };
        assert!(format!("{err}").contains("injected"), "{err}");
        assert_eq!(db.table("t").unwrap().rows(), rows_before.as_slice());
        assert_eq!(
            std::fs::read_to_string(&path).unwrap().lines().count(),
            1,
            "failed batch left no log record"
        );

        // A failing statement mid-batch rolls back without touching
        // the log at all (the append never ran).
        let err = {
            let mut t = db.table_mut("t").unwrap();
            db.apply_batch_locked(
                &mut t,
                &[
                    Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Null, Value::Int(300)],
                    },
                    Statement::Insert {
                        table: "t".into(),
                        row: vec![Value::Null, Value::from("not an int")],
                    },
                ],
            )
            .unwrap_err()
        };
        assert!(matches!(err, DbError::TypeMismatch { .. }), "{err:?}");
        assert_eq!(db.table("t").unwrap().rows(), rows_before.as_slice());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn concurrent_writes_to_distinct_tables_do_not_block() {
        // A writer holding table "a"'s write lock must not stop a
        // write (or read) of table "b" — the heart of lock sharding.
        let mut db = Database::new();
        for name in ["a", "b"] {
            db.create_table(
                name,
                Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]),
            )
            .unwrap();
        }
        let held = db.table_mut("a").unwrap();
        db.insert("b", vec![Value::Int(1)]).unwrap();
        assert_eq!(db.table("b").unwrap().len(), 1);
        drop(held);
    }
}
