//! The database: a named collection of tables.

use std::collections::BTreeMap;

use crate::error::{DbError, DbResult};
use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;

/// An in-memory relational database.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), microdb::DbError> {
/// use microdb::{ColumnDef, ColumnType, Database, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_table("t", Schema::new(vec![ColumnDef::new("x", ColumnType::Int)]))?;
/// db.insert("t", vec![Value::Int(1)])?;
/// assert_eq!(db.table("t")?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] if the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<()> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        self.tables
            .insert(name.to_owned(), Table::new(name, schema));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Immutable access to a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Mutable access to a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchTable`] if absent.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Whether a table exists.
    #[must_use]
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Names of all tables, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Inserts a row into `table`, returning its physical position.
    ///
    /// # Errors
    ///
    /// Table lookup and schema validation errors.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<usize> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows.
    ///
    /// # Errors
    ///
    /// Stops at the first failing row.
    pub fn insert_many<I: IntoIterator<Item = Row>>(
        &mut self,
        table: &str,
        rows: I,
    ) -> DbResult<usize> {
        let t = self.table_mut(table)?;
        let mut n = 0;
        for r in rows {
            t.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Updates rows of `table` matching `pred`; returns the count.
    ///
    /// # Errors
    ///
    /// Table/column resolution, type and predicate-evaluation errors.
    pub fn update(
        &mut self,
        table: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> DbResult<usize> {
        let t = self.table_mut(table)?;
        let schema = t.schema().clone();
        // Evaluate the predicate outside the row closure so errors
        // surface instead of silently skipping rows.
        let mut err = None;
        let n = t.update_where(
            |row| match pred.eval(&schema, row) {
                Ok(b) => b,
                Err(e) => {
                    err = Some(e);
                    false
                }
            },
            assignments,
        )?;
        match err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Deletes rows of `table` matching `pred`; returns the count.
    ///
    /// # Errors
    ///
    /// Table resolution and predicate-evaluation errors.
    pub fn delete(&mut self, table: &str, pred: &Predicate) -> DbResult<usize> {
        let t = self.table_mut(table)?;
        let schema = t.schema().clone();
        let mut err = None;
        let n = t.delete_where(|row| match pred.eval(&schema, row) {
            Ok(b) => b,
            Err(e) => {
                err = Some(e);
                false
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Total number of physical rows across all tables (used by the
    /// space-overhead experiments).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Operand;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("x", ColumnType::Int),
            ]),
        )
        .unwrap();
        db.insert_many("t", (0..5).map(|i| vec![Value::Null, Value::Int(i)]))
            .unwrap();
        db
    }

    #[test]
    fn create_and_drop() {
        let mut db = db();
        assert!(db.has_table("t"));
        assert!(matches!(
            db.create_table("t", Schema::new(vec![])),
            Err(DbError::TableExists(_))
        ));
        db.drop_table("t").unwrap();
        assert!(!db.has_table("t"));
        assert!(matches!(db.drop_table("t"), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn update_via_predicate() {
        let mut db = db();
        let n = db
            .update(
                "t",
                &Predicate::ge(Operand::col("x"), Operand::lit(3i64)),
                &[("x".to_owned(), Value::Int(100))],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn delete_via_predicate() {
        let mut db = db();
        let n = db
            .delete("t", &Predicate::lt(Operand::col("x"), Operand::lit(2i64)))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.table("t").unwrap().len(), 3);
    }

    #[test]
    fn predicate_errors_propagate() {
        let mut db = db();
        assert!(db
            .update(
                "t",
                &Predicate::eq(Operand::col("zzz"), Operand::lit(1i64)),
                &[("x".to_owned(), Value::Int(0))],
            )
            .is_err());
        assert!(db
            .delete("t", &Predicate::eq(Operand::col("zzz"), Operand::lit(1i64)))
            .is_err());
    }

    #[test]
    fn table_names_sorted() {
        let mut db = db();
        db.create_table("a", Schema::new(vec![ColumnDef::new("y", ColumnType::Int)]))
            .unwrap();
        assert_eq!(db.table_names(), vec!["a", "t"]);
    }
}
