//! Physical tables: row storage plus hash indexes.

use std::collections::{HashMap, VecDeque};

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;

/// A stored row: one value per schema column.
pub type Row = Vec<Value>;

/// One logical write, recorded in the table's change journal. Each
/// generation bump produces exactly one delta, so a caching layer
/// holding a snapshot at generation `g` can replay
/// [`Table::deltas_since`]`(g)` instead of re-reading every row.
///
/// Deltas are self-contained: rewrites and removals carry the *old*
/// row images, so consumers can invalidate derived per-row state (e.g.
/// decoded-object memos keyed by a column of the old row) without
/// consulting any other copy of the table.
#[derive(Clone, Debug, PartialEq)]
pub enum RowDelta {
    /// A row appended at the end of the table (physical position =
    /// previous row count), auto-increment columns already resolved.
    Append(Row),
    /// In-place rewrites: `(physical index, old row, new row)` for
    /// every row the update matched, in ascending index order.
    Rewrite(Vec<(usize, Row, Row)>),
    /// Removals: `(pre-removal physical index, removed row)` in
    /// ascending index order. Replaying requires removing in
    /// *descending* order so earlier indices stay valid.
    Remove(Vec<(usize, Row)>),
}

impl RowDelta {
    /// Rows touched — the unit the journal's sliding window is
    /// bounded in.
    fn cost(&self) -> usize {
        match self {
            RowDelta::Append(_) => 1,
            RowDelta::Rewrite(v) => v.len(),
            RowDelta::Remove(v) => v.len(),
        }
    }
}

/// Rows (not entries) a table's change journal retains before the
/// oldest deltas slide out of the window. Sized so the common
/// single-row write stream keeps ~a thousand generations replayable
/// while a bulk rewrite of a huge table evicts itself immediately —
/// consumers always fall back to a full re-read when the window has
/// slid past their snapshot.
const JOURNAL_ROW_BUDGET: usize = 1024;

/// Bounded sliding window of [`RowDelta`]s. Entry `i` describes the
/// write that produced generation `first + i`.
#[derive(Clone, Debug, Default)]
struct ChangeJournal {
    /// Generation of the oldest retained entry.
    first: u64,
    entries: VecDeque<RowDelta>,
    /// Sum of `cost()` over `entries`.
    cost: usize,
}

impl ChangeJournal {
    fn starting_at(first: u64) -> ChangeJournal {
        ChangeJournal {
            first,
            entries: VecDeque::new(),
            cost: 0,
        }
    }

    fn push(&mut self, delta: RowDelta) {
        self.cost += delta.cost();
        self.entries.push_back(delta);
        while self.cost > JOURNAL_ROW_BUDGET {
            let Some(old) = self.entries.pop_front() else {
                break;
            };
            self.cost -= old.cost();
            self.first += 1;
        }
    }
}

/// A hash index over a single column.
#[derive(Clone, Debug, Default)]
struct HashIndex {
    column: usize,
    map: HashMap<Value, Vec<usize>>,
    dirty: bool,
}

impl HashIndex {
    fn rebuild(&mut self, rows: &[Row]) {
        self.map.clear();
        for (i, r) in rows.iter().enumerate() {
            self.map.entry(r[self.column].clone()).or_default().push(i);
        }
        self.dirty = false;
    }
}

/// A single table: schema, rows, and optional hash indexes.
///
/// Mutation goes through [`Table::insert`], [`Table::update_where`] and
/// [`Table::delete_where`]; reads go through [`Table::rows`] or an
/// index probe. Indexes update incrementally on insert and rebuild
/// lazily after updates/deletes.
///
/// Every mutation that changes at least one row bumps a monotonic
/// [`Table::generation`] stamp and records a [`RowDelta`] in a bounded
/// change journal, giving caching layers (e.g. the FORM's decoded-row
/// cache) both a cheap staleness check — a cache entry captured at
/// generation `g` is valid exactly while `generation() == g` — and a
/// cheap *repair* path: [`Table::deltas_since`]`(g)` replays the
/// writes between a stale snapshot and the present.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    indexes: Vec<HashIndex>,
    next_auto: i64,
    generation: u64,
    journal: ChangeJournal,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(name: &str, schema: Schema) -> Table {
        Table {
            name: name.to_owned(),
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            next_auto: 1,
            generation: 0,
            journal: ChangeJournal::starting_at(1),
        }
    }

    /// The table's monotonic write stamp: bumped by every call to
    /// [`Table::insert`], and by [`Table::update_where`] /
    /// [`Table::delete_where`] **when at least one row changed**. A
    /// write that matches zero rows leaves the stamp (and therefore
    /// every warm cache slot keyed on it) untouched — the stamp
    /// changes exactly when the physical rows do, which is also the
    /// invariant the change journal depends on: one [`RowDelta`] per
    /// bump.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The deltas for generations `g+1 ..= generation()`, oldest
    /// first — what a consumer holding a snapshot at generation `g`
    /// must replay to catch up. Returns `None` when the journal's
    /// sliding window no longer reaches back to `g` (or `g` is from
    /// the future); the caller falls back to a full re-read, so
    /// correctness never depends on journal retention.
    pub fn deltas_since(&self, g: u64) -> Option<impl Iterator<Item = &RowDelta>> {
        if g > self.generation || g + 1 < self.journal.first {
            return None;
        }
        let skip = usize::try_from(g + 1 - self.journal.first).ok()?;
        Some(self.journal.entries.iter().skip(skip))
    }

    /// The table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Declares a hash index on `column`. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchColumn`] if the column does not exist.
    pub fn create_index(&mut self, column: &str) -> DbResult<()> {
        let ix = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_owned()))?;
        if self.indexes.iter().any(|i| i.column == ix) {
            return Ok(());
        }
        let mut index = HashIndex {
            column: ix,
            map: HashMap::new(),
            dirty: false,
        };
        index.rebuild(&self.rows);
        self.indexes.push(index);
        Ok(())
    }

    /// Inserts a row, filling auto-increment columns that are `Null`.
    /// Returns the row's physical position.
    ///
    /// # Errors
    ///
    /// Returns schema-validation errors from [`Schema::check_row`].
    pub fn insert(&mut self, mut values: Row) -> DbResult<usize> {
        self.schema.check_row(&values)?;
        self.generation += 1;
        for (i, c) in self.schema.columns().iter().enumerate() {
            if c.is_auto_increment() && values[i].is_null() {
                values[i] = Value::Int(self.next_auto);
                self.next_auto += 1;
            } else if c.is_auto_increment() {
                if let Value::Int(v) = values[i] {
                    self.next_auto = self.next_auto.max(v + 1);
                }
            }
        }
        let pos = self.rows.len();
        for index in &mut self.indexes {
            if !index.dirty {
                index
                    .map
                    .entry(values[index.column].clone())
                    .or_default()
                    .push(pos);
            }
        }
        self.journal.push(RowDelta::Append(values.clone()));
        self.rows.push(values);
        Ok(pos)
    }

    /// Updates every row satisfying `pred`, assigning `assignments`
    /// (column name → new value). Returns the number of updated rows.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchColumn`] for unknown assignment targets
    /// and [`DbError::TypeMismatch`] for ill-typed values.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Row) -> bool,
        assignments: &[(String, Value)],
    ) -> DbResult<usize> {
        let mut resolved = Vec::with_capacity(assignments.len());
        for (name, v) in assignments {
            let ix = self
                .schema
                .column_index(name)
                .ok_or_else(|| DbError::NoSuchColumn(name.clone()))?;
            if !self.schema.columns()[ix].accepts(v) {
                return Err(DbError::TypeMismatch {
                    column: name.clone(),
                    expected: self.schema.columns()[ix].column_type(),
                    got: v.clone(),
                });
            }
            resolved.push((ix, v.clone()));
        }
        let mut rewrites = Vec::new();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if pred(row) {
                let old = row.clone();
                for (ix, v) in &resolved {
                    row[*ix] = v.clone();
                }
                rewrites.push((i, old, row.clone()));
            }
        }
        let n = rewrites.len();
        if n > 0 {
            self.generation += 1;
            self.journal.push(RowDelta::Rewrite(rewrites));
            for index in &mut self.indexes {
                index.dirty = true;
            }
        }
        Ok(n)
    }

    /// Deletes every row satisfying `pred`; returns how many were
    /// removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let mut removals = Vec::new();
        let mut i = 0;
        self.rows.retain(|r| {
            let keep = !pred(r);
            if !keep {
                removals.push((i, r.clone()));
            }
            i += 1;
            keep
        });
        let removed = removals.len();
        if removed > 0 {
            self.generation += 1;
            self.journal.push(RowDelta::Remove(removals));
            for index in &mut self.indexes {
                index.dirty = true;
            }
        }
        removed
    }

    /// Probes the hash index on `column` for rows equal to `value`.
    /// Returns `None` when no index exists (caller falls back to a
    /// scan). Rebuilds a dirty index first.
    pub fn index_probe(&mut self, column: &str, value: &Value) -> Option<Vec<usize>> {
        let ix = self.schema.column_index(column)?;
        let rows = &self.rows;
        let index = self.indexes.iter_mut().find(|i| i.column == ix)?;
        if index.dirty {
            index.rebuild(rows);
        }
        Some(index.map.get(value).cloned().unwrap_or_default())
    }

    /// Read-only index probe for the shared-access query path: returns
    /// `None` when no index exists **or** the index is dirty (the
    /// caller falls back to a scan instead of mutating shared state).
    /// Writers keep indexes fresh via [`Table::refresh_indexes`], so a
    /// dirty index is only seen between a mutation and its refresh.
    ///
    /// There is deliberately **no size threshold**: an index declared
    /// via [`Table::create_index`] is built eagerly and probed at any
    /// row count, so single-object lookups cost the same at 8 rows as
    /// at 8 million (a `table4_paper` sweep anomaly was once suspected
    /// to be a small-`n` probe→scan crossover here; no such crossover
    /// exists — the pre-cache anomaly was unmarshalling noise at
    /// microsecond scale, and the post-cache sweep is flat).
    #[must_use]
    pub fn index_probe_ref(&self, column: &str, value: &Value) -> Option<Vec<usize>> {
        let ix = self.schema.column_index(column)?;
        let index = self.indexes.iter().find(|i| i.column == ix)?;
        if index.dirty {
            return None;
        }
        Some(index.map.get(value).cloned().unwrap_or_default())
    }

    /// Rebuilds every dirty index now, so subsequent read-only probes
    /// ([`Table::index_probe_ref`]) stay on the fast path. Called by
    /// writers after updates/deletes: the writer pays the rebuild,
    /// concurrent readers never mutate.
    pub fn refresh_indexes(&mut self) {
        let rows = &self.rows;
        for index in &mut self.indexes {
            if index.dirty {
                index.rebuild(rows);
            }
        }
    }

    /// Whether `column` has an index (used by the planner).
    #[must_use]
    pub fn has_index(&self, column: &str) -> bool {
        self.schema
            .column_index(column)
            .is_some_and(|ix| self.indexes.iter().any(|i| i.column == ix))
    }

    /// Names of the columns with declared hash indexes, in declaration
    /// order (snapshots persist these so restored tables keep their
    /// probe plans).
    #[must_use]
    pub fn indexed_columns(&self) -> Vec<&str> {
        self.indexes
            .iter()
            .map(|i| self.schema.columns()[i.column].name())
            .collect()
    }

    /// The auto-increment cursor: the id the next `Null` insert into
    /// an auto column would receive.
    #[must_use]
    pub fn next_auto(&self) -> i64 {
        self.next_auto
    }

    /// Undoes one journaled delta (the newest first — callers walk
    /// the journal tail in reverse).
    fn undo_delta(&mut self, delta: &RowDelta) {
        match delta {
            RowDelta::Append(row) => {
                let popped = self.rows.pop();
                debug_assert_eq!(popped.as_ref(), Some(row), "undo out of order");
            }
            RowDelta::Rewrite(rw) => {
                for (ix, old, _new) in rw {
                    self.rows[*ix] = old.clone();
                }
            }
            RowDelta::Remove(rm) => {
                // Indices are pre-removal positions in ascending
                // order, so re-inserting ascending restores them.
                for (ix, row) in rm {
                    self.rows.insert(*ix, row.clone());
                }
            }
        }
    }

    /// Rolls the rows back to their state at generation `g` by
    /// undoing the journal tail — the in-memory half of an atomic
    /// multi-statement write whose WAL append failed. Returns `false`
    /// (and changes nothing) if the journal window no longer reaches
    /// `g`; object writes are a handful of rows, far inside the
    /// budget, so that only happens for pathological batches.
    ///
    /// On success the generation still advances (partial states may
    /// have been observed by caches stamped with intermediate
    /// generations — rolling the stamp *back* would validate them)
    /// and the journal restarts empty, so delta consumers behind the
    /// rollback fall back to a full re-read. The auto-increment
    /// cursor is deliberately left advanced: skipped ids are
    /// harmless, reused ids are not.
    pub fn rollback_to(&mut self, g: u64) -> bool {
        if g == self.generation {
            return true; // nothing applied, nothing to undo
        }
        let Some(deltas) = self.deltas_since(g) else {
            return false;
        };
        let tail: Vec<RowDelta> = deltas.cloned().collect();
        for delta in tail.iter().rev() {
            self.undo_delta(delta);
        }
        self.generation += 1;
        self.journal = ChangeJournal::starting_at(self.generation + 1);
        for index in &mut self.indexes {
            index.dirty = true;
        }
        self.refresh_indexes();
        true
    }

    /// Rebuilds a table from persisted parts, preserving the write
    /// stamp and auto-increment cursor — the restore half of the
    /// snapshot subsystem. Every row is validated against the schema;
    /// indexes are *not* created here (callers re-declare them via
    /// [`Table::create_index`], which builds eagerly). The change
    /// journal restarts empty at `generation + 1`: deltas from before
    /// the snapshot are unreplayable (consumers at older generations
    /// fall back to a full read), while writes replayed on top — e.g.
    /// WAL records after a restore — journal normally.
    ///
    /// # Errors
    ///
    /// Schema-validation errors for any row that does not fit.
    pub fn from_parts(
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        next_auto: i64,
        generation: u64,
    ) -> DbResult<Table> {
        for row in &rows {
            schema.check_row(row)?;
        }
        Ok(Table {
            name: name.to_owned(),
            schema,
            rows,
            indexes: Vec::new(),
            next_auto,
            generation,
            journal: ChangeJournal::starting_at(generation + 1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn people() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("age", ColumnType::Int),
        ]);
        let mut t = Table::new("people", schema);
        t.insert(vec![Value::Null, "alice".into(), Value::Int(30)])
            .unwrap();
        t.insert(vec![Value::Null, "bob".into(), Value::Int(25)])
            .unwrap();
        t.insert(vec![Value::Null, "carol".into(), Value::Int(30)])
            .unwrap();
        t
    }

    #[test]
    fn auto_increment_assigns_sequential_ids() {
        let t = people();
        let ids: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn explicit_id_advances_counter() {
        let mut t = people();
        t.insert(vec![Value::Int(10), "dave".into(), Value::Int(40)])
            .unwrap();
        t.insert(vec![Value::Null, "eve".into(), Value::Int(22)])
            .unwrap();
        assert_eq!(t.rows()[4][0], Value::Int(11));
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut t = people();
        assert!(t
            .insert(vec![Value::Null, Value::Int(5), Value::Int(1)])
            .is_err());
        assert!(t.insert(vec![Value::Null, "x".into()]).is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn update_where_applies_assignments() {
        let mut t = people();
        let n = t
            .update_where(
                |r| r[2] == Value::Int(30),
                &[("age".to_owned(), Value::Int(31))],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.rows()[0][2], Value::Int(31));
        assert_eq!(t.rows()[1][2], Value::Int(25));
    }

    #[test]
    fn update_rejects_unknown_column_and_bad_type() {
        let mut t = people();
        assert!(matches!(
            t.update_where(|_| true, &[("nope".to_owned(), Value::Int(0))]),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            t.update_where(|_| true, &[("age".to_owned(), Value::Str("x".into()))]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn delete_where_removes_rows() {
        let mut t = people();
        assert_eq!(t.delete_where(|r| r[1] == Value::from("bob")), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.delete_where(|_| false), 0);
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut t = people();
        t.create_index("age").unwrap();
        let hits = t.index_probe("age", &Value::Int(30)).unwrap();
        assert_eq!(hits, vec![0, 2]);
        assert!(t.index_probe("age", &Value::Int(99)).unwrap().is_empty());
        assert!(t.index_probe("name", &Value::from("alice")).is_none());
    }

    #[test]
    fn index_stays_fresh_across_mutation() {
        let mut t = people();
        t.create_index("age").unwrap();
        t.insert(vec![Value::Null, "dave".into(), Value::Int(30)])
            .unwrap();
        assert_eq!(
            t.index_probe("age", &Value::Int(30)).unwrap(),
            vec![0, 2, 3]
        );
        t.update_where(
            |r| r[1] == Value::from("alice"),
            &[("age".to_owned(), Value::Int(99))],
        )
        .unwrap();
        assert_eq!(t.index_probe("age", &Value::Int(30)).unwrap(), vec![2, 3]);
        t.delete_where(|r| r[1] == Value::from("dave"));
        assert_eq!(t.index_probe("age", &Value::Int(30)).unwrap(), vec![2]);
    }

    #[test]
    fn index_probe_is_size_independent() {
        // Pins the "no build threshold" contract: the probe answers
        // from the hash index at every table size, tiny ones included.
        for n in [2i64, 8, 1024] {
            let schema = Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("k", ColumnType::Int),
            ]);
            let mut t = Table::new("t", schema);
            t.create_index("k").unwrap();
            for i in 0..n {
                t.insert(vec![Value::Null, Value::Int(i % 7)]).unwrap();
            }
            let probed = t.index_probe_ref("k", &Value::Int(1));
            assert!(probed.is_some(), "probe must not degrade at n={n}");
            let expected: Vec<usize> = t
                .rows()
                .iter()
                .enumerate()
                .filter(|(_, r)| r[1] == Value::Int(1))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(probed.unwrap(), expected);
        }
    }

    #[test]
    fn generation_bumps_exactly_when_rows_change() {
        let mut t = people();
        let g0 = t.generation();
        assert_eq!(g0, 3, "three seed inserts");
        t.insert(vec![Value::Null, "dave".into(), Value::Int(40)])
            .unwrap();
        assert_eq!(t.generation(), g0 + 1);
        // Regression: writes that match zero rows must NOT bump — a
        // spurious bump evicts warm cache slots for no reason.
        t.update_where(|_| false, &[("age".to_owned(), Value::Int(1))])
            .unwrap();
        assert_eq!(t.generation(), g0 + 1, "no-op updates must not bump");
        t.delete_where(|_| false);
        assert_eq!(t.generation(), g0 + 1, "no-op deletes must not bump");
        // Effective update/delete writes do bump.
        t.update_where(
            |r| r[1] == Value::from("dave"),
            &[("age".to_owned(), Value::Int(41))],
        )
        .unwrap();
        assert_eq!(t.generation(), g0 + 2);
        t.delete_where(|r| r[1] == Value::from("dave"));
        assert_eq!(t.generation(), g0 + 3);
        // Reads and index maintenance never bump.
        t.create_index("age").unwrap();
        let _ = t.index_probe("age", &Value::Int(40));
        t.refresh_indexes();
        assert_eq!(t.generation(), g0 + 3);
        // Failed validation mutates nothing and does not bump.
        assert!(t.insert(vec![Value::Null, Value::Int(5)]).is_err());
        assert_eq!(t.generation(), g0 + 3);
    }

    /// Replays `deltas` on top of `rows`, the way a cache layer would.
    fn apply_deltas(rows: &mut Vec<Row>, deltas: Vec<RowDelta>) {
        for d in deltas {
            match d {
                RowDelta::Append(row) => rows.push(row),
                RowDelta::Rewrite(rw) => {
                    for (ix, _, new) in rw {
                        rows[ix] = new;
                    }
                }
                RowDelta::Remove(rm) => {
                    for (ix, _) in rm.into_iter().rev() {
                        rows.remove(ix);
                    }
                }
            }
        }
    }

    #[test]
    fn deltas_since_replays_to_current_rows() {
        let mut t = people();
        let g0 = t.generation();
        let mut snapshot = t.rows().to_vec();
        t.insert(vec![Value::Null, "dave".into(), Value::Int(40)])
            .unwrap();
        t.update_where(
            |r| r[2] == Value::Int(30),
            &[("age".to_owned(), Value::Int(31))],
        )
        .unwrap();
        t.delete_where(|r| r[1] == Value::from("bob"));
        let deltas: Vec<RowDelta> = t.deltas_since(g0).unwrap().cloned().collect();
        assert_eq!(deltas.len(), 3, "one delta per generation bump");
        apply_deltas(&mut snapshot, deltas);
        assert_eq!(snapshot, t.rows());
        // Old row images ride along on rewrites and removals.
        let deltas: Vec<RowDelta> = t.deltas_since(g0).unwrap().cloned().collect();
        match &deltas[1] {
            RowDelta::Rewrite(rw) => {
                assert_eq!(rw.len(), 2);
                assert_eq!(rw[0].1[2], Value::Int(30), "old image preserved");
                assert_eq!(rw[0].2[2], Value::Int(31));
            }
            other => panic!("expected rewrite, got {other:?}"),
        }
        match &deltas[2] {
            RowDelta::Remove(rm) => assert_eq!(rm[0].1[1], Value::from("bob")),
            other => panic!("expected remove, got {other:?}"),
        }
        // Caught-up consumers get an empty (but present) window.
        assert_eq!(t.deltas_since(t.generation()).unwrap().count(), 0);
        // Future generations are unanswerable.
        assert!(t.deltas_since(t.generation() + 1).is_none());
    }

    #[test]
    fn journal_window_slides_and_reports_overflow() {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("k", ColumnType::Int),
        ]);
        let mut t = Table::new("t", schema);
        let total = JOURNAL_ROW_BUDGET + 64;
        for i in 0..total {
            t.insert(vec![Value::Null, Value::Int(i as i64)]).unwrap();
        }
        // Generation 0 slid out of the window long ago.
        assert!(t.deltas_since(0).is_none());
        // The newest JOURNAL_ROW_BUDGET generations stay replayable.
        let g = t.generation() - JOURNAL_ROW_BUDGET as u64;
        let kept: Vec<RowDelta> = t.deltas_since(g).unwrap().cloned().collect();
        assert_eq!(kept.len(), JOURNAL_ROW_BUDGET);
        let mut snapshot = t.rows()[..total - JOURNAL_ROW_BUDGET].to_vec();
        apply_deltas(&mut snapshot, kept);
        assert_eq!(snapshot, t.rows());
        assert!(t.deltas_since(g - 1).is_none(), "window edge is exact");
        // A bulk rewrite larger than the whole budget evicts itself:
        // nothing older than "now" is replayable afterwards.
        t.update_where(|_| true, &[("k".to_owned(), Value::Int(-1))])
            .unwrap();
        assert!(t.deltas_since(t.generation() - 1).is_none());
        assert_eq!(t.deltas_since(t.generation()).unwrap().count(), 0);
    }

    #[test]
    fn restored_table_journals_fresh_writes_only() {
        let t = people();
        let restored = Table::from_parts(
            t.name(),
            t.schema().clone(),
            t.rows().to_vec(),
            t.next_auto(),
            t.generation(),
        )
        .unwrap();
        let g = restored.generation();
        // Pre-snapshot history is gone...
        assert!(restored.deltas_since(g - 1).is_none());
        // ...but the restored stamp itself is a valid (empty) window,
        // and writes on top journal normally.
        assert_eq!(restored.deltas_since(g).unwrap().count(), 0);
        let mut restored = restored;
        restored
            .insert(vec![Value::Null, "dave".into(), Value::Int(40)])
            .unwrap();
        let deltas: Vec<RowDelta> = restored.deltas_since(g).unwrap().cloned().collect();
        assert_eq!(deltas.len(), 1);
        assert!(matches!(&deltas[0], RowDelta::Append(r) if r[1] == Value::from("dave")));
    }

    #[test]
    fn rollback_to_undoes_the_journal_tail() {
        let mut t = people();
        t.create_index("age").unwrap();
        let g0 = t.generation();
        let before = t.rows().to_vec();
        // A mixed tail: delete + two inserts + a rewrite, like a
        // faceted object save.
        t.delete_where(|r| r[1] == Value::from("bob"));
        t.insert(vec![Value::Null, "dave".into(), Value::Int(40)])
            .unwrap();
        t.insert(vec![Value::Null, "erin".into(), Value::Int(41)])
            .unwrap();
        t.update_where(
            |r| r[2] == Value::Int(30),
            &[("age".to_owned(), Value::Int(31))],
        )
        .unwrap();
        assert!(t.rollback_to(g0));
        assert_eq!(t.rows(), before);
        // The stamp advanced past every intermediate state...
        assert!(t.generation() > g0 + 4);
        // ...and delta consumers at g0 must fall back to a full read.
        assert!(t.deltas_since(g0).is_none());
        // Indexes were refreshed, not left dirty.
        assert_eq!(
            t.index_probe_ref("age", &Value::Int(30)).unwrap(),
            vec![0, 2]
        );
        // Rolling back to the current generation is a no-op.
        let g = t.generation();
        assert!(t.rollback_to(g));
        assert_eq!(t.generation(), g);
        // An unreachable generation is refused.
        assert!(!t.rollback_to(g + 5));
    }

    #[test]
    fn create_index_is_idempotent() {
        let mut t = people();
        t.create_index("age").unwrap();
        t.create_index("age").unwrap();
        assert!(t.has_index("age"));
        assert!(!t.has_index("name"));
        assert!(t.create_index("zzz").is_err());
    }
}
