//! Physical tables: row storage plus hash indexes.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;

/// A stored row: one value per schema column.
pub type Row = Vec<Value>;

/// A hash index over a single column.
#[derive(Clone, Debug, Default)]
struct HashIndex {
    column: usize,
    map: HashMap<Value, Vec<usize>>,
    dirty: bool,
}

impl HashIndex {
    fn rebuild(&mut self, rows: &[Row]) {
        self.map.clear();
        for (i, r) in rows.iter().enumerate() {
            self.map.entry(r[self.column].clone()).or_default().push(i);
        }
        self.dirty = false;
    }
}

/// A single table: schema, rows, and optional hash indexes.
///
/// Mutation goes through [`Table::insert`], [`Table::update_where`] and
/// [`Table::delete_where`]; reads go through [`Table::rows`] or an
/// index probe. Indexes update incrementally on insert and rebuild
/// lazily after updates/deletes.
///
/// Every mutating call also bumps a monotonic [`Table::generation`]
/// stamp, giving caching layers (e.g. the FORM's decoded-row cache) a
/// cheap staleness check: a cache entry captured at generation `g` is
/// valid exactly while `generation() == g`.
#[derive(Clone, Debug)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    indexes: Vec<HashIndex>,
    next_auto: i64,
    generation: u64,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(name: &str, schema: Schema) -> Table {
        Table {
            name: name.to_owned(),
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            next_auto: 1,
            generation: 0,
        }
    }

    /// The table's monotonic write stamp: bumped by every call to
    /// [`Table::insert`], [`Table::update_where`] and
    /// [`Table::delete_where`] (even ones that end up matching no
    /// rows — the contract is conservative so cache layers never have
    /// to reason about whether a write was a no-op).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The table name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Declares a hash index on `column`. Idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchColumn`] if the column does not exist.
    pub fn create_index(&mut self, column: &str) -> DbResult<()> {
        let ix = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn(column.to_owned()))?;
        if self.indexes.iter().any(|i| i.column == ix) {
            return Ok(());
        }
        let mut index = HashIndex {
            column: ix,
            map: HashMap::new(),
            dirty: false,
        };
        index.rebuild(&self.rows);
        self.indexes.push(index);
        Ok(())
    }

    /// Inserts a row, filling auto-increment columns that are `Null`.
    /// Returns the row's physical position.
    ///
    /// # Errors
    ///
    /// Returns schema-validation errors from [`Schema::check_row`].
    pub fn insert(&mut self, mut values: Row) -> DbResult<usize> {
        self.schema.check_row(&values)?;
        self.generation += 1;
        for (i, c) in self.schema.columns().iter().enumerate() {
            if c.is_auto_increment() && values[i].is_null() {
                values[i] = Value::Int(self.next_auto);
                self.next_auto += 1;
            } else if c.is_auto_increment() {
                if let Value::Int(v) = values[i] {
                    self.next_auto = self.next_auto.max(v + 1);
                }
            }
        }
        let pos = self.rows.len();
        for index in &mut self.indexes {
            if !index.dirty {
                index
                    .map
                    .entry(values[index.column].clone())
                    .or_default()
                    .push(pos);
            }
        }
        self.rows.push(values);
        Ok(pos)
    }

    /// Updates every row satisfying `pred`, assigning `assignments`
    /// (column name → new value). Returns the number of updated rows.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchColumn`] for unknown assignment targets
    /// and [`DbError::TypeMismatch`] for ill-typed values.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Row) -> bool,
        assignments: &[(String, Value)],
    ) -> DbResult<usize> {
        let mut resolved = Vec::with_capacity(assignments.len());
        for (name, v) in assignments {
            let ix = self
                .schema
                .column_index(name)
                .ok_or_else(|| DbError::NoSuchColumn(name.clone()))?;
            if !self.schema.columns()[ix].accepts(v) {
                return Err(DbError::TypeMismatch {
                    column: name.clone(),
                    expected: self.schema.columns()[ix].column_type(),
                    got: v.clone(),
                });
            }
            resolved.push((ix, v.clone()));
        }
        self.generation += 1;
        let mut n = 0;
        for row in &mut self.rows {
            if pred(row) {
                for (ix, v) in &resolved {
                    row[*ix] = v.clone();
                }
                n += 1;
            }
        }
        if n > 0 {
            for index in &mut self.indexes {
                index.dirty = true;
            }
        }
        Ok(n)
    }

    /// Deletes every row satisfying `pred`; returns how many were
    /// removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        self.generation += 1;
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            for index in &mut self.indexes {
                index.dirty = true;
            }
        }
        removed
    }

    /// Probes the hash index on `column` for rows equal to `value`.
    /// Returns `None` when no index exists (caller falls back to a
    /// scan). Rebuilds a dirty index first.
    pub fn index_probe(&mut self, column: &str, value: &Value) -> Option<Vec<usize>> {
        let ix = self.schema.column_index(column)?;
        let rows = &self.rows;
        let index = self.indexes.iter_mut().find(|i| i.column == ix)?;
        if index.dirty {
            index.rebuild(rows);
        }
        Some(index.map.get(value).cloned().unwrap_or_default())
    }

    /// Read-only index probe for the shared-access query path: returns
    /// `None` when no index exists **or** the index is dirty (the
    /// caller falls back to a scan instead of mutating shared state).
    /// Writers keep indexes fresh via [`Table::refresh_indexes`], so a
    /// dirty index is only seen between a mutation and its refresh.
    ///
    /// There is deliberately **no size threshold**: an index declared
    /// via [`Table::create_index`] is built eagerly and probed at any
    /// row count, so single-object lookups cost the same at 8 rows as
    /// at 8 million (a `table4_paper` sweep anomaly was once suspected
    /// to be a small-`n` probe→scan crossover here; no such crossover
    /// exists — the pre-cache anomaly was unmarshalling noise at
    /// microsecond scale, and the post-cache sweep is flat).
    #[must_use]
    pub fn index_probe_ref(&self, column: &str, value: &Value) -> Option<Vec<usize>> {
        let ix = self.schema.column_index(column)?;
        let index = self.indexes.iter().find(|i| i.column == ix)?;
        if index.dirty {
            return None;
        }
        Some(index.map.get(value).cloned().unwrap_or_default())
    }

    /// Rebuilds every dirty index now, so subsequent read-only probes
    /// ([`Table::index_probe_ref`]) stay on the fast path. Called by
    /// writers after updates/deletes: the writer pays the rebuild,
    /// concurrent readers never mutate.
    pub fn refresh_indexes(&mut self) {
        let rows = &self.rows;
        for index in &mut self.indexes {
            if index.dirty {
                index.rebuild(rows);
            }
        }
    }

    /// Whether `column` has an index (used by the planner).
    #[must_use]
    pub fn has_index(&self, column: &str) -> bool {
        self.schema
            .column_index(column)
            .is_some_and(|ix| self.indexes.iter().any(|i| i.column == ix))
    }

    /// Names of the columns with declared hash indexes, in declaration
    /// order (snapshots persist these so restored tables keep their
    /// probe plans).
    #[must_use]
    pub fn indexed_columns(&self) -> Vec<&str> {
        self.indexes
            .iter()
            .map(|i| self.schema.columns()[i.column].name())
            .collect()
    }

    /// The auto-increment cursor: the id the next `Null` insert into
    /// an auto column would receive.
    #[must_use]
    pub fn next_auto(&self) -> i64 {
        self.next_auto
    }

    /// Rebuilds a table from persisted parts, preserving the write
    /// stamp and auto-increment cursor — the restore half of the
    /// snapshot subsystem. Every row is validated against the schema;
    /// indexes are *not* created here (callers re-declare them via
    /// [`Table::create_index`], which builds eagerly).
    ///
    /// # Errors
    ///
    /// Schema-validation errors for any row that does not fit.
    pub fn from_parts(
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        next_auto: i64,
        generation: u64,
    ) -> DbResult<Table> {
        for row in &rows {
            schema.check_row(row)?;
        }
        Ok(Table {
            name: name.to_owned(),
            schema,
            rows,
            indexes: Vec::new(),
            next_auto,
            generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn people() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", ColumnType::Int).auto_increment(),
            ColumnDef::new("name", ColumnType::Str),
            ColumnDef::new("age", ColumnType::Int),
        ]);
        let mut t = Table::new("people", schema);
        t.insert(vec![Value::Null, "alice".into(), Value::Int(30)])
            .unwrap();
        t.insert(vec![Value::Null, "bob".into(), Value::Int(25)])
            .unwrap();
        t.insert(vec![Value::Null, "carol".into(), Value::Int(30)])
            .unwrap();
        t
    }

    #[test]
    fn auto_increment_assigns_sequential_ids() {
        let t = people();
        let ids: Vec<i64> = t.rows().iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn explicit_id_advances_counter() {
        let mut t = people();
        t.insert(vec![Value::Int(10), "dave".into(), Value::Int(40)])
            .unwrap();
        t.insert(vec![Value::Null, "eve".into(), Value::Int(22)])
            .unwrap();
        assert_eq!(t.rows()[4][0], Value::Int(11));
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut t = people();
        assert!(t
            .insert(vec![Value::Null, Value::Int(5), Value::Int(1)])
            .is_err());
        assert!(t.insert(vec![Value::Null, "x".into()]).is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn update_where_applies_assignments() {
        let mut t = people();
        let n = t
            .update_where(
                |r| r[2] == Value::Int(30),
                &[("age".to_owned(), Value::Int(31))],
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.rows()[0][2], Value::Int(31));
        assert_eq!(t.rows()[1][2], Value::Int(25));
    }

    #[test]
    fn update_rejects_unknown_column_and_bad_type() {
        let mut t = people();
        assert!(matches!(
            t.update_where(|_| true, &[("nope".to_owned(), Value::Int(0))]),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            t.update_where(|_| true, &[("age".to_owned(), Value::Str("x".into()))]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn delete_where_removes_rows() {
        let mut t = people();
        assert_eq!(t.delete_where(|r| r[1] == Value::from("bob")), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.delete_where(|_| false), 0);
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut t = people();
        t.create_index("age").unwrap();
        let hits = t.index_probe("age", &Value::Int(30)).unwrap();
        assert_eq!(hits, vec![0, 2]);
        assert!(t.index_probe("age", &Value::Int(99)).unwrap().is_empty());
        assert!(t.index_probe("name", &Value::from("alice")).is_none());
    }

    #[test]
    fn index_stays_fresh_across_mutation() {
        let mut t = people();
        t.create_index("age").unwrap();
        t.insert(vec![Value::Null, "dave".into(), Value::Int(30)])
            .unwrap();
        assert_eq!(
            t.index_probe("age", &Value::Int(30)).unwrap(),
            vec![0, 2, 3]
        );
        t.update_where(
            |r| r[1] == Value::from("alice"),
            &[("age".to_owned(), Value::Int(99))],
        )
        .unwrap();
        assert_eq!(t.index_probe("age", &Value::Int(30)).unwrap(), vec![2, 3]);
        t.delete_where(|r| r[1] == Value::from("dave"));
        assert_eq!(t.index_probe("age", &Value::Int(30)).unwrap(), vec![2]);
    }

    #[test]
    fn index_probe_is_size_independent() {
        // Pins the "no build threshold" contract: the probe answers
        // from the hash index at every table size, tiny ones included.
        for n in [2i64, 8, 1024] {
            let schema = Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("k", ColumnType::Int),
            ]);
            let mut t = Table::new("t", schema);
            t.create_index("k").unwrap();
            for i in 0..n {
                t.insert(vec![Value::Null, Value::Int(i % 7)]).unwrap();
            }
            let probed = t.index_probe_ref("k", &Value::Int(1));
            assert!(probed.is_some(), "probe must not degrade at n={n}");
            let expected: Vec<usize> = t
                .rows()
                .iter()
                .enumerate()
                .filter(|(_, r)| r[1] == Value::Int(1))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(probed.unwrap(), expected);
        }
    }

    #[test]
    fn generation_bumps_on_every_write() {
        let mut t = people();
        let g0 = t.generation();
        assert_eq!(g0, 3, "three seed inserts");
        t.insert(vec![Value::Null, "dave".into(), Value::Int(40)])
            .unwrap();
        assert_eq!(t.generation(), g0 + 1);
        t.update_where(|_| false, &[("age".to_owned(), Value::Int(1))])
            .unwrap();
        assert_eq!(t.generation(), g0 + 2, "no-op updates still bump");
        t.delete_where(|_| false);
        assert_eq!(t.generation(), g0 + 3, "no-op deletes still bump");
        // Reads and index maintenance never bump.
        t.create_index("age").unwrap();
        let _ = t.index_probe("age", &Value::Int(40));
        t.refresh_indexes();
        assert_eq!(t.generation(), g0 + 3);
        // Failed validation mutates nothing and does not bump.
        assert!(t.insert(vec![Value::Null, Value::Int(5)]).is_err());
        assert_eq!(t.generation(), g0 + 3);
    }

    #[test]
    fn create_index_is_idempotent() {
        let mut t = people();
        t.create_index("age").unwrap();
        t.create_index("age").unwrap();
        assert!(t.has_index("age"));
        assert!(!t.has_index("name"));
        assert!(t.create_index("zzz").is_err());
    }
}
