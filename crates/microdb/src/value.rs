//! Cell values and column types.

use std::cmp::Ordering;
use std::fmt;

/// The SQL-ish type of a column.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ColumnType {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "BOOL",
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Str => "TEXT",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Value` has a *total* order (`Null < Bool < numbers < Str`, with
/// NaN ordered after every other float) so rows can always be sorted —
/// the property `ORDER BY` and sort-merge joins rely on.
///
/// # Examples
///
/// ```
/// use microdb::Value;
///
/// assert!(Value::Null < Value::Int(0));
/// assert!(Value::Int(1) < Value::Int(2));
/// assert_eq!(Value::from("abc"), Value::Str("abc".to_owned()));
/// ```
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// The column type this value inhabits, or `None` for NULL.
    #[must_use]
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ColumnType::Bool),
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts an integer, if this value is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a string slice, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts a bool, if this value is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a float, accepting integers (SQL-style numeric
    /// widening).
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            // Int and Float share a rank; hash through the float bits of
            // the canonical numeric value so Int(1) == Float(1.0) hash
            // identically (required by the Eq impl above).
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i64::try_from(i).expect("usize too large for Value::Int"))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = vec![
            Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(3),
                Value::Str("a".into()),
            ]
        );
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_is_ordered_not_poisonous() {
        assert!(Value::Float(f64::NAN) > Value::Float(1e300));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn eq_implies_same_hash() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::Str("x".into())), hash_of(&Value::from("x")));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(Some("a")), Value::Str("a".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.column_type(), None);
        assert_eq!(Value::Int(1).column_type(), Some(ColumnType::Int));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
        assert_eq!(Value::Int(-2).to_string(), "-2");
    }
}
