//! Query building and execution.
//!
//! A [`Query`] is a SELECT statement: source (table or joins), WHERE
//! predicate, projection, ORDER BY, DISTINCT and LIMIT. Execution is
//! index-aware for single-table equality filters and uses hash joins
//! for equi-joins.

use std::collections::HashMap;

use crate::database::Database;
use crate::error::{DbError, DbResult};
use crate::predicate::{resolve_column, Predicate};
use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::value::Value;

/// Sort direction for ORDER BY.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A join clause: another table plus the equi-join condition.
#[derive(Clone, Debug)]
struct JoinClause {
    table: String,
    /// Left column (resolved against the accumulated schema).
    on_left: String,
    /// Right column (resolved against the joined table).
    on_right: String,
}

/// A SELECT query under construction.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), microdb::DbError> {
/// use microdb::{ColumnDef, ColumnType, Database, Operand, Predicate, Query, Schema, Value};
///
/// let mut db = Database::new();
/// db.create_table("events", Schema::new(vec![
///     ColumnDef::new("id", ColumnType::Int).auto_increment(),
///     ColumnDef::new("location", ColumnType::Str),
/// ]))?;
/// db.insert("events", vec![Value::Null, "Schloss Dagstuhl".into()])?;
/// db.insert("events", vec![Value::Null, "Undisclosed location".into()])?;
///
/// let rows = Query::from("events")
///     .filter(Predicate::eq(Operand::col("location"), Operand::lit("Schloss Dagstuhl")))
///     .execute(&mut db)?;
/// assert_eq!(rows.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Query {
    table: String,
    joins: Vec<JoinClause>,
    filter: Predicate,
    projection: Option<Vec<String>>,
    order_by: Vec<(String, SortOrder)>,
    distinct: bool,
    limit: Option<usize>,
}

impl Query {
    /// Starts a query reading from `table`.
    #[must_use]
    pub fn from(table: &str) -> Query {
        Query {
            table: table.to_owned(),
            joins: Vec::new(),
            filter: Predicate::True,
            projection: None,
            order_by: Vec::new(),
            distinct: false,
            limit: None,
        }
    }

    /// Adds an inner equi-join: `JOIN table ON left = right`.
    #[must_use]
    pub fn join(mut self, table: &str, on_left: &str, on_right: &str) -> Query {
        self.joins.push(JoinClause {
            table: table.to_owned(),
            on_left: on_left.to_owned(),
            on_right: on_right.to_owned(),
        });
        self
    }

    /// ANDs a predicate onto the WHERE clause.
    #[must_use]
    pub fn filter(mut self, pred: Predicate) -> Query {
        self.filter = match self.filter {
            Predicate::True => pred,
            f => f.and(pred),
        };
        self
    }

    /// Projects the result onto the named columns.
    #[must_use]
    pub fn select(mut self, columns: &[&str]) -> Query {
        self.projection = Some(columns.iter().map(|c| (*c).to_owned()).collect());
        self
    }

    /// Appends an ORDER BY key.
    #[must_use]
    pub fn order_by(mut self, column: &str, order: SortOrder) -> Query {
        self.order_by.push((column.to_owned(), order));
        self
    }

    /// Deduplicates result rows.
    #[must_use]
    pub fn distinct(mut self) -> Query {
        self.distinct = true;
        self
    }

    /// Caps the number of result rows.
    #[must_use]
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Executes, returning only the rows.
    ///
    /// # Errors
    ///
    /// Propagates table/column resolution and evaluation errors.
    pub fn execute(&self, db: &mut Database) -> DbResult<Vec<Row>> {
        Ok(self.execute_full(db)?.rows)
    }

    /// Executes against a shared database reference, returning only
    /// the rows. See [`Query::execute_full_ref`] for the contract.
    ///
    /// # Errors
    ///
    /// Propagates table/column resolution and evaluation errors.
    pub fn execute_ref(&self, db: &Database) -> DbResult<Vec<Row>> {
        Ok(self.execute_full_ref(db)?.rows)
    }

    /// Executes, returning rows plus result schema and statistics.
    ///
    /// Rebuilds any dirty index on the base table first, then runs the
    /// shared-access plan of [`Query::execute_full_ref`].
    ///
    /// # Errors
    ///
    /// Propagates table/column resolution and evaluation errors.
    pub fn execute_full(&self, db: &mut Database) -> DbResult<ResultSet> {
        db.table_mut(&self.table)?.refresh_indexes();
        self.execute_full_ref(db)
    }

    /// Plans this query against an already-borrowed base table,
    /// returning the *physical row indices* of the result in result
    /// order — or `None` when the query shape needs materialized rows
    /// (joins, projection, DISTINCT). Callers that keep per-row
    /// derived data aligned with physical positions (e.g. the FORM's
    /// decoded-row cache) use this to run WHERE / ORDER BY / LIMIT
    /// without cloning a single row; the caller is responsible for
    /// passing the table this query's `FROM` names, and for holding
    /// the table's lock across both this call and the use of the
    /// returned indices.
    ///
    /// Index usage and result order match [`Query::execute_full_ref`]
    /// exactly (probe when the filter pins an indexed column and the
    /// index is clean; stable sort for ORDER BY).
    ///
    /// # Errors
    ///
    /// Propagates column resolution and evaluation errors.
    pub fn plan_indices(&self, table: &Table) -> DbResult<Option<Vec<usize>>> {
        if !self.joins.is_empty() || self.projection.is_some() || self.distinct {
            return Ok(None);
        }
        let schema = table.schema();
        let rows = table.rows();
        let probed = self
            .filter
            .index_candidate()
            .and_then(|(col, val)| table.index_probe_ref(col, val));
        let candidates: Vec<usize> = match probed {
            Some(hits) => hits,
            None => (0..rows.len()).collect(),
        };
        let mut kept = Vec::with_capacity(candidates.len());
        if self.filter == Predicate::True {
            kept = candidates;
        } else {
            for i in candidates {
                if self.filter.eval(schema, &rows[i])? {
                    kept.push(i);
                }
            }
        }
        if !self.order_by.is_empty() {
            let keys: Vec<(usize, SortOrder)> = self
                .order_by
                .iter()
                .map(|(c, o)| Ok((resolve_column(schema, c)?, *o)))
                .collect::<DbResult<_>>()?;
            kept.sort_by(|&a, &b| {
                for (ix, ord) in &keys {
                    let c = rows[a][*ix].cmp(&rows[b][*ix]);
                    let c = if *ord == SortOrder::Desc {
                        c.reverse()
                    } else {
                        c
                    };
                    if !c.is_eq() {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = self.limit {
            kept.truncate(n);
        }
        Ok(Some(kept))
    }

    /// Executes against a shared database reference, returning rows
    /// plus result schema and statistics.
    ///
    /// This is the plan the concurrent executor runs under a read
    /// lock: it never mutates the database, falling back to a scan if
    /// an index is dirty (writers refresh indexes after mutating, so
    /// that window is small). Results are identical to
    /// [`Query::execute_full`] either way.
    ///
    /// # Errors
    ///
    /// Propagates table/column resolution and evaluation errors.
    pub fn execute_full_ref(&self, db: &Database) -> DbResult<ResultSet> {
        let mut stats = ExecStats::default();

        // 1. Base scan (or index probe when the filter pins an indexed
        //    column and there are no joins to confuse resolution).
        let mut schema: Schema;
        let mut rows: Vec<Row>;
        {
            let probe = if self.joins.is_empty() {
                self.filter.index_candidate()
            } else {
                None
            };
            let base = db.table(&self.table)?;
            schema = base.schema().clone();
            let mut probed = None;
            if let Some((col, val)) = probe {
                if let Some(hits) = base.index_probe_ref(col, val) {
                    stats.index_probes += 1;
                    probed = Some(hits);
                }
            }
            rows = match probed {
                Some(hits) => {
                    stats.rows_scanned += hits.len() as u64;
                    let all = base.rows();
                    hits.iter().map(|&i| all[i].clone()).collect()
                }
                None => {
                    stats.rows_scanned += base.len() as u64;
                    base.rows().to_vec()
                }
            };
        }
        let mut current_name = self.table.clone();

        // 2. Joins: hash join on the equi-key.
        for j in &self.joins {
            let right = db.table(&j.table)?;
            let right_schema = right.schema().clone();
            let joined_schema = schema.join(&current_name, &right_schema, &j.table);

            let left_ix = resolve_column(&schema, &j.on_left)
                .or_else(|_| resolve_column(&joined_schema, &j.on_left))?;
            let right_ix = resolve_column(&right_schema, &j.on_right)?;

            // Build hash table on the right side.
            let mut hash: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, r) in right.rows().iter().enumerate() {
                hash.entry(r[right_ix].clone()).or_default().push(i);
            }
            stats.rows_scanned += right.len() as u64;

            let right_rows = right.rows();
            let mut out = Vec::new();
            for l in &rows {
                let key = &l[left_ix];
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = hash.get(key) {
                    for &ri in matches {
                        let mut combined = l.clone();
                        combined.extend(right_rows[ri].iter().cloned());
                        out.push(combined);
                    }
                }
            }
            rows = out;
            schema = joined_schema;
            // After the first join, the accumulated side is referred to
            // by qualified names only.
            current_name = format!("{current_name}+{}", j.table);
        }

        // 3. WHERE.
        if self.filter != Predicate::True {
            let mut kept = Vec::with_capacity(rows.len());
            for r in rows {
                if self.filter.eval(&schema, &r)? {
                    kept.push(r);
                }
            }
            rows = kept;
        }

        // 4. ORDER BY (stable, multi-key).
        if !self.order_by.is_empty() {
            let keys: Vec<(usize, SortOrder)> = self
                .order_by
                .iter()
                .map(|(c, o)| Ok((resolve_column(&schema, c)?, *o)))
                .collect::<DbResult<_>>()?;
            rows.sort_by(|a, b| {
                for (ix, ord) in &keys {
                    let c = a[*ix].cmp(&b[*ix]);
                    let c = if *ord == SortOrder::Desc {
                        c.reverse()
                    } else {
                        c
                    };
                    if !c.is_eq() {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        // 5. Projection.
        if let Some(cols) = &self.projection {
            let ixs: Vec<usize> = cols
                .iter()
                .map(|c| resolve_column(&schema, c))
                .collect::<DbResult<_>>()?;
            let defs: Vec<_> = ixs.iter().map(|&i| schema.columns()[i].clone()).collect();
            rows = rows
                .into_iter()
                .map(|r| ixs.iter().map(|&i| r[i].clone()).collect())
                .collect();
            schema = Schema::new(defs);
        }

        // 6. DISTINCT.
        if self.distinct {
            let mut seen = std::collections::HashSet::new();
            rows.retain(|r| seen.insert(r.clone()));
        }

        // 7. LIMIT.
        if let Some(n) = self.limit {
            rows.truncate(n);
        }

        stats.rows_returned = rows.len() as u64;
        Ok(ResultSet {
            schema,
            rows,
            stats,
        })
    }
}

/// Result of [`Query::execute_full`]: rows, their schema, and
/// execution statistics.
#[derive(Clone, Debug)]
pub struct ResultSet {
    /// Schema of the result rows (qualified names after joins).
    pub schema: Schema,
    /// The result rows.
    pub rows: Vec<Row>,
    /// Execution counters.
    pub stats: ExecStats,
}

impl ResultSet {
    /// Extracts one column of the result.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::NoSuchColumn`] / [`DbError::AmbiguousColumn`]
    /// per [`resolve_column`].
    pub fn column(&self, name: &str) -> DbResult<Vec<Value>> {
        let ix = resolve_column(&self.schema, name)?;
        Ok(self.rows.iter().map(|r| r[ix].clone()).collect())
    }

    /// Value at `(row, column)`.
    ///
    /// # Errors
    ///
    /// Column resolution errors; [`DbError::InvalidOperation`] if the
    /// row index is out of bounds.
    pub fn value(&self, row: usize, column: &str) -> DbResult<&Value> {
        let ix = resolve_column(&self.schema, column)?;
        self.rows
            .get(row)
            .map(|r| &r[ix])
            .ok_or_else(|| DbError::InvalidOperation(format!("row {row} out of bounds")))
    }
}

/// Counters describing how a query executed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Physical rows visited.
    pub rows_scanned: u64,
    /// Index probes taken instead of scans.
    pub index_probes: u64,
    /// Rows in the final result.
    pub rows_returned: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::ColumnType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "users",
            Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("name", ColumnType::Str),
            ]),
        )
        .unwrap();
        db.create_table(
            "events",
            Schema::new(vec![
                ColumnDef::new("id", ColumnType::Int).auto_increment(),
                ColumnDef::new("host", ColumnType::Int),
                ColumnDef::new("location", ColumnType::Str),
            ]),
        )
        .unwrap();
        for n in ["alice", "bob", "carol"] {
            db.insert("users", vec![Value::Null, n.into()]).unwrap();
        }
        db.insert(
            "events",
            vec![Value::Null, Value::Int(1), "Dagstuhl".into()],
        )
        .unwrap();
        db.insert("events", vec![Value::Null, Value::Int(1), "MIT".into()])
            .unwrap();
        db.insert("events", vec![Value::Null, Value::Int(2), "CMU".into()])
            .unwrap();
        db
    }

    #[test]
    fn filter_selects_matching_rows() {
        let mut db = db();
        let rows = Query::from("events")
            .filter(Predicate::eq(
                crate::predicate::Operand::col("host"),
                crate::predicate::Operand::lit(1i64),
            ))
            .execute(&mut db)
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn join_combines_tables() {
        let mut db = db();
        let rs = Query::from("events")
            .join("users", "host", "id")
            .select(&["users.name", "events.location"])
            .order_by("events.location", SortOrder::Asc)
            .execute_full(&mut db)
            .unwrap();
        let names: Vec<_> = rs.column("users.name").unwrap();
        assert_eq!(
            names,
            vec![
                Value::from("bob"),
                Value::from("alice"),
                Value::from("alice")
            ]
        );
    }

    #[test]
    fn order_by_desc_and_limit() {
        let mut db = db();
        let rows = Query::from("users")
            .order_by("name", SortOrder::Desc)
            .limit(2)
            .execute(&mut db)
            .unwrap();
        assert_eq!(rows[0][1], Value::from("carol"));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn distinct_deduplicates() {
        let mut db = db();
        let rows = Query::from("events")
            .select(&["host"])
            .distinct()
            .execute(&mut db)
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn index_probe_used_when_available() {
        let mut db = db();
        db.table_mut("events")
            .unwrap()
            .create_index("host")
            .unwrap();
        let rs = Query::from("events")
            .filter(Predicate::eq(
                crate::predicate::Operand::col("host"),
                crate::predicate::Operand::lit(1i64),
            ))
            .execute_full(&mut db)
            .unwrap();
        assert_eq!(rs.stats.index_probes, 1);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.stats.rows_scanned, 2);
    }

    #[test]
    fn index_and_scan_agree() {
        let mut db = db();
        let q = Query::from("events").filter(Predicate::eq(
            crate::predicate::Operand::col("location"),
            crate::predicate::Operand::lit("MIT"),
        ));
        let scan = q.execute(&mut db).unwrap();
        db.table_mut("events")
            .unwrap()
            .create_index("location")
            .unwrap();
        let probed = q.execute(&mut db).unwrap();
        assert_eq!(scan, probed);
    }

    #[test]
    fn projection_errors_on_unknown_column() {
        let mut db = db();
        assert!(matches!(
            Query::from("users").select(&["zzz"]).execute(&mut db),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn value_accessor_bounds() {
        let mut db = db();
        let rs = Query::from("users").execute_full(&mut db).unwrap();
        assert_eq!(rs.value(0, "name").unwrap(), &Value::from("alice"));
        assert!(rs.value(99, "name").is_err());
    }

    #[test]
    fn execute_ref_matches_execute() {
        let mut db = db();
        db.table_mut("events")
            .unwrap()
            .create_index("host")
            .unwrap();
        let q = Query::from("events")
            .filter(Predicate::eq(
                crate::predicate::Operand::col("host"),
                crate::predicate::Operand::lit(1i64),
            ))
            .order_by("location", SortOrder::Asc);
        let mutable = q.execute(&mut db).unwrap();
        let shared = q.execute_ref(&db).unwrap();
        assert_eq!(mutable, shared);
        assert_eq!(q.execute_full_ref(&db).unwrap().stats.index_probes, 1);
    }

    #[test]
    fn execute_ref_falls_back_to_scan_on_dirty_index() {
        let mut db = db();
        db.table_mut("events")
            .unwrap()
            .create_index("host")
            .unwrap();
        // A delete dirties the index; the shared path must still
        // return correct rows (by scanning) without mutating.
        db.delete(
            "events",
            &Predicate::eq(
                crate::predicate::Operand::col("location"),
                crate::predicate::Operand::lit("CMU"),
            ),
        )
        .unwrap();
        let q = Query::from("events").filter(Predicate::eq(
            crate::predicate::Operand::col("host"),
            crate::predicate::Operand::lit(1i64),
        ));
        let full = q.execute_full_ref(&db).unwrap();
        assert_eq!(full.stats.index_probes, 0, "dirty index is not probed");
        assert_eq!(full.rows.len(), 2);
        // The mutable path refreshes and probes again.
        let refreshed = q.execute_full(&mut db).unwrap();
        assert_eq!(refreshed.stats.index_probes, 1);
        assert_eq!(refreshed.rows, full.rows);
    }

    #[test]
    fn plan_indices_matches_execute_for_supported_shapes() {
        let db = db();
        db.table_mut("events")
            .unwrap()
            .create_index("host")
            .unwrap();
        let queries = vec![
            Query::from("events"),
            Query::from("events").filter(Predicate::eq(
                crate::predicate::Operand::col("host"),
                crate::predicate::Operand::lit(1i64),
            )),
            Query::from("events")
                .filter(Predicate::eq(
                    crate::predicate::Operand::col("location"),
                    crate::predicate::Operand::lit("MIT"),
                ))
                .order_by("host", SortOrder::Desc),
            Query::from("events")
                .order_by("location", SortOrder::Asc)
                .limit(2),
        ];
        for q in queries {
            let rows = q.execute_ref(&db).unwrap();
            let table = db.table("events").unwrap();
            let indices = q.plan_indices(&table).unwrap().expect("supported shape");
            let via_indices: Vec<Row> = indices.iter().map(|&i| table.rows()[i].clone()).collect();
            assert_eq!(via_indices, rows, "{q:?}");
        }
    }

    #[test]
    fn plan_indices_rejects_unsupported_shapes() {
        let db = db();
        let table = db.table("events").unwrap();
        assert!(Query::from("events")
            .join("users", "host", "id")
            .plan_indices(&table)
            .unwrap()
            .is_none());
        assert!(Query::from("events")
            .select(&["host"])
            .plan_indices(&table)
            .unwrap()
            .is_none());
        assert!(Query::from("events")
            .distinct()
            .plan_indices(&table)
            .unwrap()
            .is_none());
    }

    #[test]
    fn join_skips_null_keys() {
        let mut db = db();
        db.create_table(
            "maybe",
            Schema::new(vec![ColumnDef::new("u", ColumnType::Int).nullable()]),
        )
        .unwrap();
        db.insert("maybe", vec![Value::Null]).unwrap();
        db.insert("maybe", vec![Value::Int(1)]).unwrap();
        let rows = Query::from("maybe")
            .join("users", "u", "id")
            .execute(&mut db)
            .unwrap();
        assert_eq!(rows.len(), 1);
    }
}
