//! Runtime values of λ<sub>JDB</sub> (Figure 4's runtime syntax).

use std::fmt;
use std::sync::Arc;

use faceted::{Faceted, FacetedList, Label};

use crate::ast::{Expr, Table};
use crate::error::EvalError;

/// A raw (non-faceted) value `R ::= c | a | (λx.e)` plus labels, which
/// are first-class at runtime so that `label k in e` can bind them.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RawValue {
    /// Unit.
    Unit,
    /// Boolean constant.
    Bool(bool),
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
    /// File handle (print channel).
    File(String),
    /// A store address.
    Addr(usize),
    /// A label (result of evaluating a label variable).
    Lbl(Label),
    /// A closure. Substitution-based evaluation means the body is
    /// already closed up to its parameter.
    Closure(String, Arc<Expr>),
}

impl RawValue {
    /// Embeds the raw value back into expression syntax (values are a
    /// subset of expressions in the paper's runtime syntax).
    #[must_use]
    pub fn to_expr(&self) -> Expr {
        match self {
            RawValue::Unit => Expr::Unit,
            RawValue::Bool(b) => Expr::Bool(*b),
            RawValue::Int(i) => Expr::Int(*i),
            RawValue::Str(s) => Expr::Str(s.clone()),
            RawValue::File(f) => Expr::File(f.clone()),
            RawValue::Addr(a) => Expr::Addr(*a),
            RawValue::Lbl(l) => Expr::LabelLit(*l),
            RawValue::Closure(p, b) => Expr::Lam(p.clone(), Arc::clone(b)),
        }
    }
}

impl fmt::Display for RawValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawValue::Unit => write!(f, "()"),
            RawValue::Bool(b) => write!(f, "{b}"),
            RawValue::Int(i) => write!(f, "{i}"),
            RawValue::Str(s) => write!(f, "{s}"),
            RawValue::File(n) => write!(f, "#file:{n}"),
            RawValue::Addr(a) => write!(f, "#addr:{a}"),
            RawValue::Lbl(l) => write!(f, "{l}"),
            RawValue::Closure(p, b) => write!(f, "(λ{p}. {b})"),
        }
    }
}

/// A λ<sub>JDB</sub> value: a (possibly faceted) raw value, or a table
/// of guarded rows. Tables never occur *inside* faceted values — the
/// `⟨⟨·⟩⟩` operator pushes facets down to table rows instead (§4.2).
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    /// A faceted raw value.
    F(Faceted<RawValue>),
    /// A faceted table.
    Table(Table),
}

impl Val {
    /// A plain (leaf) value.
    #[must_use]
    pub fn raw(r: RawValue) -> Val {
        Val::F(Faceted::leaf(r))
    }

    /// Convenience: integer value.
    #[must_use]
    pub fn int(i: i64) -> Val {
        Val::raw(RawValue::Int(i))
    }

    /// Convenience: Boolean value.
    #[must_use]
    pub fn bool(b: bool) -> Val {
        Val::raw(RawValue::Bool(b))
    }

    /// Convenience: string value.
    #[must_use]
    pub fn str(s: &str) -> Val {
        Val::raw(RawValue::Str(s.to_owned()))
    }

    /// The underlying faceted raw value, or an error for tables (used
    /// by strict positions that cannot accept tables).
    ///
    /// # Errors
    ///
    /// [`EvalError::ExpectedNonTable`] if this is a table.
    pub fn as_faceted(&self) -> Result<&Faceted<RawValue>, EvalError> {
        match self {
            Val::F(f) => Ok(f),
            Val::Table(_) => Err(EvalError::ExpectedNonTable),
        }
    }

    /// The table, or an error (used by relational operators).
    ///
    /// # Errors
    ///
    /// [`EvalError::ExpectedTable`] if this is not a table.
    pub fn as_table(&self) -> Result<&Table, EvalError> {
        match self {
            Val::Table(t) => Ok(t),
            Val::F(_) => Err(EvalError::ExpectedTable),
        }
    }

    /// Embeds the value into expression syntax.
    #[must_use]
    pub fn to_expr(&self) -> Expr {
        match self {
            Val::F(f) => faceted_to_expr(f),
            Val::Table(t) => Expr::TableLit(t.clone()),
        }
    }

    /// The `⟨⟨k ? V₁ : V₂⟩⟩` operation of §4.2: faceted values wrap in
    /// a facet, tables merge rows with the shared-row optimization;
    /// mixing a table with a non-table is the paper's "stuck" case.
    ///
    /// # Errors
    ///
    /// [`EvalError::MixedFacet`] when one side is a table and the
    /// other is not.
    pub fn facet_join(label: Label, high: Val, low: Val) -> Result<Val, EvalError> {
        match (high, low) {
            (Val::F(h), Val::F(l)) => Ok(Val::F(Faceted::split(label, h, l))),
            (Val::Table(h), Val::Table(l)) => {
                Ok(Val::Table(FacetedList::facet_join(label, &h, &l)))
            }
            _ => Err(EvalError::MixedFacet),
        }
    }

    /// All labels occurring in the value (facet structure, row guards,
    /// and — for closures — their bodies; used by `closeK`).
    #[must_use]
    pub fn labels(&self) -> Vec<Label> {
        let mut out = Vec::new();
        match self {
            Val::F(f) => {
                out.extend(f.labels());
                for (_, leaf) in f.leaves() {
                    if let RawValue::Closure(_, body) = leaf {
                        collect_expr_labels(body, &mut out);
                    }
                    if let RawValue::Lbl(l) = leaf {
                        out.push(*l);
                    }
                }
            }
            Val::Table(t) => out.extend(t.labels()),
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::F(v) => write!(f, "{v:?}"),
            Val::Table(t) => {
                writeln!(f, "table {{")?;
                for (b, row) in t.iter() {
                    writeln!(f, "  ({b:?}, {row:?})")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Embeds a faceted raw value into (runtime) expression syntax.
#[must_use]
pub fn faceted_to_expr(f: &Faceted<RawValue>) -> Expr {
    match f.as_leaf() {
        Some(r) => r.to_expr(),
        None => {
            let k = f.root_label().expect("non-leaf has a root label");
            Expr::facet(
                k,
                faceted_to_expr(&f.assume(k, true)),
                faceted_to_expr(&f.assume(k, false)),
            )
        }
    }
}

/// Collects every label mentioned in an expression (facet labels and
/// label literals).
pub fn collect_expr_labels(e: &Expr, out: &mut Vec<Label>) {
    match e {
        Expr::LabelLit(l) => out.push(*l),
        Expr::TableLit(t) => out.extend(t.labels()),
        Expr::Lam(_, b) | Expr::LabelIn(_, b) | Expr::Ref(b) | Expr::Deref(b) => {
            collect_expr_labels(b, out);
        }
        Expr::Select(_, _, b) | Expr::Project(_, b) => collect_expr_labels(b, out),
        Expr::App(a, b)
        | Expr::Assign(a, b)
        | Expr::Restrict(a, b)
        | Expr::Join(a, b)
        | Expr::Union(a, b)
        | Expr::BinOp(_, a, b)
        | Expr::Let(_, a, b) => {
            collect_expr_labels(a, out);
            collect_expr_labels(b, out);
        }
        Expr::Facet(k, h, l) => {
            collect_expr_labels(k, out);
            collect_expr_labels(h, out);
            collect_expr_labels(l, out);
        }
        Expr::If(c, t, e2) => {
            collect_expr_labels(c, out);
            collect_expr_labels(t, out);
            collect_expr_labels(e2, out);
        }
        Expr::Fold(a, b, c) => {
            collect_expr_labels(a, out);
            collect_expr_labels(b, out);
            collect_expr_labels(c, out);
        }
        Expr::Row(es) => {
            for e in es {
                collect_expr_labels(e, out);
            }
        }
        Expr::Unit
        | Expr::Bool(_)
        | Expr::Int(_)
        | Expr::Str(_)
        | Expr::File(_)
        | Expr::Var(_)
        | Expr::Addr(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faceted::Branches;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn facet_join_on_values() {
        let v = Val::facet_join(k(0), Val::int(1), Val::int(2)).unwrap();
        match v {
            Val::F(f) => assert_eq!(f.labels(), vec![k(0)]),
            Val::Table(_) => panic!("expected faceted value"),
        }
    }

    #[test]
    fn facet_join_on_tables_merges_rows() {
        let mut hi = Table::new();
        hi.push(Branches::new(), vec!["Alice".into(), "Smith".into()]);
        let mut lo = Table::new();
        lo.push(Branches::new(), vec!["Bob".into(), "Jones".into()]);
        let v = Val::facet_join(k(0), Val::Table(hi), Val::Table(lo)).unwrap();
        assert_eq!(v.as_table().unwrap().len(), 2);
    }

    #[test]
    fn mixed_join_is_stuck() {
        let t = Val::Table(Table::new());
        assert_eq!(
            Val::facet_join(k(0), Val::int(3), t),
            Err(EvalError::MixedFacet)
        );
    }

    #[test]
    fn to_expr_round_trip_shape() {
        let v = Val::F(Faceted::split(
            k(0),
            Faceted::leaf(RawValue::Int(1)),
            Faceted::leaf(RawValue::Int(2)),
        ));
        assert_eq!(v.to_expr().to_string(), "⟨k0 ? 1 : 2⟩");
    }

    #[test]
    fn labels_sees_closure_bodies() {
        let body = Expr::facet(k(2), Expr::Bool(true), Expr::Bool(false));
        let v = Val::raw(RawValue::Closure("x".into(), body.rc()));
        assert_eq!(v.labels(), vec![k(2)]);
    }
}
