//! The big-step faceted evaluator: `Σ, e ⇓_pc Σ′, V`.
//!
//! Every rule of Figures 4 and 5 is implemented here, plus the
//! λ<sub>jeeves</sub> label rules (`F-LABEL`, `F-RESTRICT`) and the
//! `F-PRINT` sink of Appendix A, and the Early Pruning rule `F-PRUNE`
//! of §4.4 (enabled by [`EvalConfig::early_prune`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use faceted::{Branch, Branches, Faceted, Label, LabelRegistry};
use labelsat::{max_true_assignment, Assignment, Formula};

use crate::ast::{Expr, Op, RowStrings, Statement, Table};
use crate::error::EvalError;
use crate::value::{RawValue, Val};

/// The store Σ: reference cells plus per-label policies.
///
/// Policies are stored as the list of values attached by successive
/// `restrict(k, ·)` calls; each entry is already faceted as
/// `⟨⟨pc ∪ {k} ? policy : λx.true⟩⟩` (rule `F-RESTRICT`), which is how
/// the all-false assignment stays valid.
#[derive(Clone, Debug, Default)]
pub struct Store {
    cells: Vec<Val>,
    policies: BTreeMap<Label, Vec<Val>>,
    labels: LabelRegistry,
}

impl Store {
    /// An empty store.
    #[must_use]
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates a fresh cell, returning its address.
    pub fn alloc(&mut self, v: Val) -> usize {
        self.cells.push(v);
        self.cells.len() - 1
    }

    /// Reads a cell (`None` when the address was never allocated —
    /// the `F-DEREF-NULL` case).
    #[must_use]
    pub fn read(&self, addr: usize) -> Option<&Val> {
        self.cells.get(addr)
    }

    /// Writes a cell.
    ///
    /// # Panics
    ///
    /// Panics if the address was never allocated.
    pub fn write(&mut self, addr: usize, v: Val) {
        self.cells[addr] = v;
    }

    /// Number of allocated cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells, for projection.
    #[must_use]
    pub fn cells(&self) -> &[Val] {
        &self.cells
    }

    /// Mutable view of all cells, for projection helpers.
    pub fn cells_mut(&mut self) -> &mut Vec<Val> {
        &mut self.cells
    }

    /// Allocates a fresh label with the default policy (`F-LABEL`).
    pub fn fresh_label(&mut self, name: &str) -> Label {
        self.labels.fresh(name)
    }

    /// The label registry.
    #[must_use]
    pub fn labels(&self) -> &LabelRegistry {
        &self.labels
    }

    /// Attaches a (pre-faceted) policy value to a label.
    pub fn push_policy(&mut self, label: Label, policy: Val) {
        self.policies.entry(label).or_default().push(policy);
    }

    /// The policies attached to a label.
    #[must_use]
    pub fn policies_of(&self, label: Label) -> &[Val] {
        self.policies.get(&label).map_or(&[], Vec::as_slice)
    }

    /// Labels that have at least one attached policy.
    pub fn policy_labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.policies.keys().copied()
    }
}

/// Evaluator configuration.
#[derive(Clone, Debug, Default)]
pub struct EvalConfig {
    /// Apply `F-PRUNE` at every table-producing step: drop rows whose
    /// guard is inconsistent with the current program counter.
    pub early_prune: bool,
    /// An additional viewer constraint for pruning (§3.2: "the session
    /// user is often the viewing context"). Rows inconsistent with
    /// `pc ∪ speculation` are dropped when pruning is on.
    pub speculation: Branches,
}

/// One line of `print` output: the resolved channel and value.
#[derive(Clone, Debug, PartialEq)]
pub struct Output {
    /// The file handle the value was printed to.
    pub channel: String,
    /// The concrete (projected) value.
    pub rendered: String,
}

/// The λ<sub>JDB</sub> interpreter: a store plus configuration.
#[derive(Clone, Debug, Default)]
pub struct Interp {
    /// The store Σ.
    pub store: Store,
    /// Evaluation options.
    pub config: EvalConfig,
    fuel: u64,
}

/// Default fuel: generous for tests, finite for generated programs.
const DEFAULT_FUEL: u64 = 1_000_000;

impl Interp {
    /// A fresh interpreter with an empty store.
    #[must_use]
    pub fn new() -> Interp {
        Interp {
            store: Store::new(),
            config: EvalConfig::default(),
            fuel: DEFAULT_FUEL,
        }
    }

    /// A fresh interpreter with Early Pruning enabled for the given
    /// viewer speculation.
    #[must_use]
    pub fn with_pruning(speculation: Branches) -> Interp {
        Interp {
            store: Store::new(),
            config: EvalConfig {
                early_prune: true,
                speculation,
            },
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the fuel budget (number of evaluation steps).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Evaluates a closed expression under the empty program counter.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program gets stuck on.
    pub fn eval(&mut self, e: &Expr) -> Result<Val, EvalError> {
        self.eval_pc(e, &Branches::new())
    }

    /// Evaluates under an explicit program counter: `Σ, e ⇓_pc Σ′, V`.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program gets stuck on.
    pub fn eval_pc(&mut self, e: &Expr, pc: &Branches) -> Result<Val, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        match e {
            // ---- Values ([F-VAL]) -------------------------------------
            Expr::Unit => Ok(Val::raw(RawValue::Unit)),
            Expr::Bool(b) => Ok(Val::bool(*b)),
            Expr::Int(i) => Ok(Val::int(*i)),
            Expr::Str(s) => Ok(Val::str(s)),
            Expr::File(f) => Ok(Val::raw(RawValue::File(f.clone()))),
            Expr::Addr(a) => Ok(Val::raw(RawValue::Addr(*a))),
            Expr::LabelLit(l) => Ok(Val::raw(RawValue::Lbl(*l))),
            Expr::TableLit(t) => Ok(self.maybe_prune(Val::Table(t.clone()), pc)),
            Expr::Lam(p, b) => Ok(Val::raw(RawValue::Closure(p.clone(), Arc::clone(b)))),
            Expr::Var(x) => Err(EvalError::UnboundVariable(x.clone())),

            // ---- Application ([F-APP] + [F-STRICT]) -------------------
            Expr::App(f, a) => {
                let vf = self.eval_pc(f, pc)?;
                let va = self.eval_pc(a, pc)?;
                self.apply(&vf, &va, pc)
            }

            // ---- Let (sugar for β-redex) ------------------------------
            Expr::Let(x, bound, body) => {
                let v = self.eval_pc(bound, pc)?;
                let body = body.subst(x, &v.to_expr());
                self.eval_pc(&body, pc)
            }

            // ---- References ([F-REF], [F-DEREF], [F-DEREF-NULL],
            //      [F-ASSIGN]) -----------------------------------------
            Expr::Ref(e) => {
                let v = self.eval_pc(e, pc)?;
                let init = self.guard_with_pc(pc, v)?;
                let a = self.store.alloc(init);
                Ok(Val::raw(RawValue::Addr(a)))
            }
            Expr::Deref(e) => {
                let v = self.eval_pc(e, pc)?;
                let f = v.as_faceted()?.clone();
                self.strict(&f, pc, &mut |me, raw, _pc| match raw {
                    RawValue::Addr(a) => Ok(me
                        .store
                        .read(*a)
                        .cloned()
                        // [F-DEREF-NULL]: unallocated address reads 0.
                        .unwrap_or_else(|| Val::int(0))),
                    other => Err(EvalError::NotAnAddress(other.to_string())),
                })
            }
            Expr::Assign(lhs, rhs) => {
                let va = self.eval_pc(lhs, pc)?;
                let v = self.eval_pc(rhs, pc)?;
                let fa = va.as_faceted()?.clone();
                let v2 = v.clone();
                self.strict(&fa, pc, &mut |me, raw, pc| match raw {
                    RawValue::Addr(a) => {
                        let old = me.store.read(*a).cloned().unwrap_or_else(|| Val::int(0));
                        let merged = facet_join_branches_val(pc, v2.clone(), old)?;
                        me.store.write(*a, merged);
                        Ok(v2.clone())
                    }
                    other => Err(EvalError::NotAnAddress(other.to_string())),
                })
            }

            // ---- Faceted expressions ([F-SPLIT], [F-LEFT], [F-RIGHT]) -
            Expr::Facet(ke, high, low) => {
                let kv = self.eval_pc(ke, pc)?;
                let kf = kv.as_faceted()?.clone();
                let high = Arc::clone(high);
                let low = Arc::clone(low);
                self.strict(&kf, pc, &mut |me, raw, pc| {
                    let k = match raw {
                        RawValue::Lbl(k) => *k,
                        other => return Err(EvalError::NotALabel(other.to_string())),
                    };
                    if pc.contains(Branch::pos(k)) {
                        // [F-LEFT]
                        me.eval_pc(&high, pc)
                    } else if pc.contains(Branch::neg(k)) {
                        // [F-RIGHT]
                        me.eval_pc(&low, pc)
                    } else {
                        // [F-SPLIT]
                        let v1 = me.eval_pc(&high, &pc.with(Branch::pos(k)))?;
                        let v2 = me.eval_pc(&low, &pc.with(Branch::neg(k)))?;
                        Val::facet_join(k, v1, v2)
                    }
                })
            }

            // ---- Labels ([F-LABEL], [F-RESTRICT]) ---------------------
            Expr::LabelIn(name, body) => {
                let k = self.store.fresh_label(name);
                let body = body.subst(name, &Expr::LabelLit(k));
                self.eval_pc(&body, pc)
            }
            Expr::Restrict(ke, pe) => {
                let kv = self.eval_pc(ke, pc)?;
                let v = self.eval_pc(pe, pc)?;
                let kf = kv.as_faceted()?.clone();
                let policy = v.clone();
                self.strict(&kf, pc, &mut |me, raw, pc| {
                    let k = match raw {
                        RawValue::Lbl(k) => *k,
                        other => return Err(EvalError::NotALabel(other.to_string())),
                    };
                    // Vp = ⟨⟨pc ∪ {k} ? V : λx.true⟩⟩
                    let trivially_true =
                        Val::raw(RawValue::Closure("x".into(), Expr::Bool(true).rc()));
                    let guard = pc.with(Branch::pos(k));
                    let vp = facet_join_branches_val(&guard, policy.clone(), trivially_true)?;
                    me.store.push_policy(k, vp);
                    Ok(policy.clone())
                })
            }

            // ---- Conditionals (faceted control flow) ------------------
            Expr::If(c, t, e2) => {
                let vc = self.eval_pc(c, pc)?;
                let fc = vc.as_faceted()?.clone();
                let t = Arc::clone(t);
                let e2 = Arc::clone(e2);
                self.strict(&fc, pc, &mut |me, raw, pc| match raw {
                    RawValue::Bool(true) => me.eval_pc(&t, pc),
                    RawValue::Bool(false) => me.eval_pc(&e2, pc),
                    other => Err(EvalError::NotABool(other.to_string())),
                })
            }

            // ---- Primitive operators ([F-STRICT] in both operands) ----
            Expr::BinOp(op, a, b) => {
                let va = self.eval_pc(a, pc)?;
                let vb = self.eval_pc(b, pc)?;
                let fa = va.as_faceted()?;
                let fb = vb.as_faceted()?;
                let joined = fa.zip_with(fb, &mut |x, y| prim_op(*op, x, y));
                // Surface the first error, if any; otherwise strip Ok.
                for (_, leaf) in joined.leaves() {
                    if let Err(e) = leaf {
                        return Err(e.clone());
                    }
                }
                Ok(Val::F(
                    joined.map(&mut |r| r.clone().expect("errors handled above")),
                ))
            }

            // ---- Relational operators (Figure 5) ----------------------
            Expr::Row(es) => {
                // Evaluate fields left to right; distribute facets over
                // the row ([F-STRICT] on each field position).
                let mut acc: Faceted<RowStrings> = Faceted::leaf(Vec::new());
                for e in es {
                    let v = self.eval_pc(e, pc)?;
                    let f = v.as_faceted()?;
                    let checked = f.map(&mut |r| match r {
                        RawValue::Str(s) => Ok(s.clone()),
                        other => Err(EvalError::RowFieldNotString(other.to_string())),
                    });
                    for (_, leaf) in checked.leaves() {
                        if let Err(e) = leaf {
                            return Err(e.clone());
                        }
                    }
                    let strings = checked.map(&mut |r| r.clone().expect("checked"));
                    acc = acc.zip_with(&strings, &mut |row, s| {
                        let mut row = row.clone();
                        row.push(s.clone());
                        row
                    });
                }
                // ⟨k ? row "a" : row "b"⟩ ≡ table {({k},a), ({¬k},b)}.
                let mut t = Table::new();
                for (guard, fields) in acc.leaves() {
                    t.push(guard, fields.clone());
                }
                Ok(self.maybe_prune(Val::Table(t), pc))
            }
            Expr::Select(i, j, e) => {
                let v = self.eval_pc(e, pc)?;
                let t = v.as_table()?;
                let mut out = Table::new();
                for (b, row) in t.iter() {
                    let (fi, fj) = (
                        row.get(*i).ok_or(EvalError::ColumnOutOfBounds {
                            index: *i,
                            width: row.len(),
                        })?,
                        row.get(*j).ok_or(EvalError::ColumnOutOfBounds {
                            index: *j,
                            width: row.len(),
                        })?,
                    );
                    if fi == fj {
                        out.push(b.clone(), row.clone());
                    }
                }
                Ok(self.maybe_prune(Val::Table(out), pc))
            }
            Expr::Project(ix, e) => {
                let v = self.eval_pc(e, pc)?;
                let t = v.as_table()?;
                let mut out = Table::new();
                for (b, row) in t.iter() {
                    let projected: Result<RowStrings, EvalError> = ix
                        .iter()
                        .map(|&i| {
                            row.get(i).cloned().ok_or(EvalError::ColumnOutOfBounds {
                                index: i,
                                width: row.len(),
                            })
                        })
                        .collect();
                    out.push(b.clone(), projected?);
                }
                Ok(self.maybe_prune(Val::Table(out), pc))
            }
            Expr::Join(a, b) => {
                let va = self.eval_pc(a, pc)?;
                let vb = self.eval_pc(b, pc)?;
                let (ta, tb) = (va.as_table()?, vb.as_table()?);
                let mut out = Table::new();
                for (b1, r1) in ta.iter() {
                    for (b2, r2) in tb.iter() {
                        let mut row = r1.clone();
                        row.extend(r2.iter().cloned());
                        out.push(b1.union(b2), row);
                    }
                }
                Ok(self.maybe_prune(Val::Table(out), pc))
            }
            Expr::Union(a, b) => {
                let va = self.eval_pc(a, pc)?;
                let vb = self.eval_pc(b, pc)?;
                let (ta, tb) = (va.as_table()?, vb.as_table()?);
                let mut out = ta.clone();
                out.extend_from(tb.clone());
                Ok(self.maybe_prune(Val::Table(out), pc))
            }
            Expr::Fold(f, p, t) => {
                let vf = self.eval_pc(f, pc)?;
                let vp = self.eval_pc(p, pc)?;
                let vt = self.eval_pc(t, pc)?;
                let rows: Vec<(Branches, RowStrings)> = vt
                    .as_table()?
                    .iter()
                    .map(|(b, r)| (b.clone(), r.clone()))
                    .collect();
                self.fold_rows(&vf, vp, &rows, pc)
            }
        }
    }

    /// `[F-FOLD-EMPTY]`, `[F-FOLD-CONSISTENT]`, `[F-FOLD-INCONSISTENT]`:
    /// the rules recurse on the tail first, then incorporate the head
    /// row if its guard is consistent with `pc`.
    fn fold_rows(
        &mut self,
        vf: &Val,
        acc: Val,
        rows: &[(Branches, RowStrings)],
        pc: &Branches,
    ) -> Result<Val, EvalError> {
        let Some(((guard, fields), rest)) = rows.split_first() else {
            return Ok(acc); // [F-FOLD-EMPTY]
        };
        let v_prime = self.fold_rows(vf, acc, rest, pc)?;
        if !guard.consistent_with(pc) {
            return Ok(v_prime); // [F-FOLD-INCONSISTENT]
        }
        // [F-FOLD-CONSISTENT]: Σ′, V_f s V′ ⇓_{pc ∪ B} Σ″, V″.
        let inner_pc = pc.union(guard);
        let mut row_table = Table::new();
        row_table.push(Branches::new(), fields.clone());
        let partial = self.apply(vf, &Val::Table(row_table), &inner_pc)?;
        let v_dprime = self.apply(&partial, &v_prime, &inner_pc)?;
        facet_join_branches_val(guard, v_dprime, v_prime)
    }

    /// Function application with [F-STRICT] on the function position.
    fn apply(&mut self, vf: &Val, va: &Val, pc: &Branches) -> Result<Val, EvalError> {
        let f = vf.as_faceted()?.clone();
        let arg = va.to_expr();
        self.strict(&f, pc, &mut |me, raw, pc| match raw {
            RawValue::Closure(p, body) => {
                let body = body.subst(p, &arg);
                me.eval_pc(&body, pc)
            }
            other => Err(EvalError::NotAFunction(other.to_string())),
        })
    }

    /// The [F-STRICT] recursion: peel facets off a value needed in a
    /// strict position, extending `pc` down each side and re-joining
    /// the results (sharing [F-LEFT]/[F-RIGHT] when `pc` already
    /// decides the label).
    fn strict(
        &mut self,
        v: &Faceted<RawValue>,
        pc: &Branches,
        f: &mut dyn FnMut(&mut Interp, &RawValue, &Branches) -> Result<Val, EvalError>,
    ) -> Result<Val, EvalError> {
        match v.as_leaf() {
            Some(raw) => f(self, raw, pc),
            None => {
                let k = v.root_label().expect("non-leaf");
                if pc.contains(Branch::pos(k)) {
                    self.strict(&v.assume(k, true), pc, f)
                } else if pc.contains(Branch::neg(k)) {
                    self.strict(&v.assume(k, false), pc, f)
                } else {
                    let vh = self.strict(&v.assume(k, true), &pc.with(Branch::pos(k)), f)?;
                    let vl = self.strict(&v.assume(k, false), &pc.with(Branch::neg(k)), f)?;
                    Val::facet_join(k, vh, vl)
                }
            }
        }
    }

    /// `⟨⟨pc ? V : default⟩⟩` for [F-REF]/[F-ASSIGN]; the default is 0
    /// for scalars (per the paper) and the empty table for tables (so
    /// that table references allocated under a branch stay usable).
    fn guard_with_pc(&self, pc: &Branches, v: Val) -> Result<Val, EvalError> {
        if pc.is_empty() {
            return Ok(v);
        }
        let default = match &v {
            Val::F(_) => Val::int(0),
            Val::Table(_) => Val::Table(Table::new()),
        };
        facet_join_branches_val(pc, v, default)
    }

    /// Early Pruning ([F-PRUNE]): drop rows inconsistent with the
    /// viewer constraint when enabled.
    fn maybe_prune(&self, v: Val, pc: &Branches) -> Val {
        if !self.config.early_prune {
            return v;
        }
        match v {
            Val::Table(t) => {
                let constraint = pc.union(&self.config.speculation);
                Val::Table(t.prune(&constraint))
            }
            other => other,
        }
    }

    /// Runs a statement, collecting `print` outputs.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] raised by the contained expressions.
    pub fn run(&mut self, s: &Statement) -> Result<Vec<Output>, EvalError> {
        match s {
            Statement::Let(x, e, body) => {
                let v = self.eval(e)?;
                let body = subst_statement(body, x, &v.to_expr());
                self.run(&body)
            }
            Statement::Print(ev, er) => {
                let out = self.print(ev, er)?;
                Ok(vec![out])
            }
            Statement::Seq(a, b) => {
                let mut out = self.run(a)?;
                out.extend(self.run(b)?);
                Ok(out)
            }
        }
    }

    /// The `F-PRINT` sink: evaluates channel and value, collects the
    /// `closeK` transitive closure of relevant labels, conjoins their
    /// policies applied to the channel, and picks a maximal-true label
    /// assignment satisfying the result.
    ///
    /// # Errors
    ///
    /// Evaluation errors, [`EvalError::BadPolicy`] for non-Boolean
    /// policy checks, [`EvalError::NoValidAssignment`] if the policy
    /// constraints are unsatisfiable.
    pub fn print(&mut self, ev: &Expr, er: &Expr) -> Result<Output, EvalError> {
        let empty = Branches::new();
        let vf = self.eval_pc(ev, &empty)?;
        let vc = self.eval_pc(er, &empty)?;

        // closeK over the labels of the channel, the value, and
        // transitively the labels of their policies.
        let mut relevant: Vec<Label> = vf.labels();
        relevant.extend(vc.labels());
        relevant.sort_unstable();
        relevant.dedup();
        loop {
            let mut grew = false;
            let snapshot = relevant.clone();
            for k in snapshot {
                for p in self.store.policies_of(k).to_vec() {
                    for l in p.labels() {
                        if !relevant.contains(&l) {
                            relevant.push(l);
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                relevant.sort_unstable();
                relevant.dedup();
                break;
            }
        }

        // ep = λx.true ∧_f Σ(k1) ∧_f …  applied to V_f.
        let mut constraint = Formula::constant(true);
        for &k in &relevant {
            for p in self.store.policies_of(k).to_vec() {
                let check = self.apply(&p, &vf, &empty)?;
                let fb = check
                    .as_faceted()
                    .map_err(|_| EvalError::BadPolicy("policy check returned a table".into()))?;
                let booleans = fb.map(&mut |r| match r {
                    RawValue::Bool(b) => Ok(*b),
                    other => Err(EvalError::BadPolicy(format!(
                        "policy check returned non-boolean {other}"
                    ))),
                });
                for (_, leaf) in booleans.leaves() {
                    if let Err(e) = leaf {
                        return Err(e.clone());
                    }
                }
                let plain = booleans.map(&mut |r| *r.as_ref().expect("checked"));
                constraint = constraint.and(Formula::from_faceted_bool(&plain));
            }
        }

        // pick pc such that pc(V_p) = true, preferring to show.
        let mut assignment =
            max_true_assignment(&constraint).ok_or(EvalError::NoValidAssignment)?;
        for &k in &relevant {
            if !assignment.is_assigned(k) {
                assignment.set(k, true);
            }
        }

        let view = assignment.to_view();
        let channel = match &vf {
            Val::F(f) => match f.project(&view) {
                RawValue::File(name) => name.clone(),
                other => return Err(EvalError::NotAFile(other.to_string())),
            },
            Val::Table(_) => return Err(EvalError::NotAFile("table".into())),
        };
        let rendered = render(&vc, &assignment);
        Ok(Output { channel, rendered })
    }
}

/// `⟨⟨B ? V₁ : V₂⟩⟩` lifted to [`Val`] (faceted values *or* tables).
///
/// # Errors
///
/// [`EvalError::MixedFacet`] when the two sides disagree about being
/// tables.
pub fn facet_join_branches_val(b: &Branches, high: Val, low: Val) -> Result<Val, EvalError> {
    let mut acc = high;
    for branch in b.iter().collect::<Vec<_>>().into_iter().rev() {
        acc = if branch.is_positive() {
            Val::facet_join(branch.label(), acc, low.clone())?
        } else {
            Val::facet_join(branch.label(), low.clone(), acc)?
        };
    }
    Ok(acc)
}

/// Renders a value under a chosen label assignment (the concrete view
/// an observer receives).
#[must_use]
pub fn render(v: &Val, assignment: &Assignment) -> String {
    let view = assignment.to_view();
    match v {
        Val::F(f) => f.project(&view).to_string(),
        Val::Table(t) => {
            let rows = t.project(&view);
            let mut s = String::from("[");
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    s.push_str("; ");
                }
                s.push_str(&r.join(","));
            }
            s.push(']');
            s
        }
    }
}

/// Primitive operator semantics on raw values.
fn prim_op(op: Op, a: &RawValue, b: &RawValue) -> Result<RawValue, EvalError> {
    use RawValue::*;
    Ok(match (op, a, b) {
        (Op::Add, Int(x), Int(y)) => Int(x + y),
        (Op::Sub, Int(x), Int(y)) => Int(x - y),
        (Op::Mul, Int(x), Int(y)) => Int(x * y),
        (Op::Lt, Int(x), Int(y)) => Bool(x < y),
        (Op::And, Bool(x), Bool(y)) => Bool(*x && *y),
        (Op::Or, Bool(x), Bool(y)) => Bool(*x || *y),
        (Op::Concat, Str(x), Str(y)) => Str(format!("{x}{y}")),
        (Op::Eq, x, y) => Bool(x == y),
        (op, x, y) => {
            return Err(EvalError::TypeError(format!(
                "cannot apply {op} to {x} and {y}"
            )))
        }
    })
}

/// Substitution over statements.
#[must_use]
pub fn subst_statement(s: &Statement, x: &str, v: &Expr) -> Statement {
    match s {
        Statement::Let(y, e, body) => {
            let e = e.subst(x, v);
            if y == x {
                Statement::Let(y.clone(), e, body.clone())
            } else {
                Statement::Let(y.clone(), e, Box::new(subst_statement(body, x, v)))
            }
        }
        Statement::Print(a, b) => Statement::Print(a.subst(x, v), b.subst(x, v)),
        Statement::Seq(a, b) => Statement::Seq(
            Box::new(subst_statement(a, x, v)),
            Box::new(subst_statement(b, x, v)),
        ),
    }
}
