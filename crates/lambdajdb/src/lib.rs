//! `lambdajdb` — the λ<sub>JDB</sub> core language, executable.
//!
//! λ<sub>JDB</sub> (Yang et al., PLDI 2016, §4) extends the
//! λ<sub>jeeves</sub> faceted λ-calculus with relational tables:
//! `row`, selection, projection, join, union and `fold`, evaluated
//! under a *program counter* of branches so that every influence of a
//! sensitive value — direct, indirect, or through database rows — is
//! tracked. This crate implements:
//!
//! * the full syntax of Figure 3 ([`Expr`], [`Statement`]);
//! * the big-step faceted semantics of Figures 4–5 ([`Interp`]),
//!   including the `F-FOLD-*` rules and the `⟨⟨·⟩⟩` value join;
//! * `label`/`restrict` and the `F-PRINT` sink of Appendix A, with the
//!   `closeK` policy closure and SAT-backed label assignment;
//! * Early Pruning (`F-PRUNE`, §4.4) behind [`EvalConfig`];
//! * view projection `L(·)` (§4.3) and the metatheory — Projection,
//!   Termination-Insensitive Non-Interference, policy compliance —
//!   as executable property tests;
//! * an s-expression parser ([`parse_expr`], [`parse_statement`]).
//!
//! # Example: the surprise party
//!
//! ```
//! use lambdajdb::{parse_statement, Interp};
//!
//! // One label guards the event name; the policy allows only the
//! // "alice" channel to see the secret facet.
//! let program = parse_statement(
//!     "(letstmt party
//!        (label k (let attached
//!                   (restrict k (lam viewer (== viewer (file alice))))
//!                   k))
//!        (seq
//!          (print (file alice) (facet party \"Carol's surprise party\" \"Private event\"))
//!          (print (file carol) (facet party \"Carol's surprise party\" \"Private event\"))))",
//! ).unwrap();
//!
//! let mut interp = Interp::new();
//! let out = interp.run(&program).unwrap();
//! assert_eq!(out[0].rendered, "Carol's surprise party");
//! assert_eq!(out[1].rendered, "Private event");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod eval;
mod parser;
mod projection;
mod value;

pub use ast::{single_row, Expr, Op, RowStrings, Statement, Table};
pub use error::EvalError;
pub use eval::{
    facet_join_branches_val, render, subst_statement, EvalConfig, Interp, Output, Store,
};
pub use parser::{parse_expr, parse_statement, ParseError};
pub use projection::{l_equivalent, project_expr, project_raw, project_store_cells, project_val};
pub use value::{collect_expr_labels, faceted_to_expr, RawValue, Val};
