//! An s-expression front end for λ<sub>JDB</sub>.
//!
//! Grammar (each form is a parenthesized list):
//!
//! ```text
//! e ::= <int> | true | false | unit | "<string>" | <ident>
//!     | (file <ident>)              output channel
//!     | (lam <x> e) | (app e e) | (let <x> e e)
//!     | (ref e) | (deref e) | (assign e e)
//!     | (facet e e e)               ⟨k ? e_H : e_L⟩
//!     | (label <k> e)               label k in e
//!     | (restrict e e)              restrict(k, policy)
//!     | (row e ...) | (select i j e) | (project (i ...) e)
//!     | (join e e) | (union e e) | (fold e e e)
//!     | (if e e e)
//!     | (+ e e) | (- e e) | (* e e) | (== e e) | (< e e)
//!     | (and e e) | (or e e) | (concat e e)
//! stmt ::= (print e e) | (letstmt <x> e stmt) | (seq stmt stmt)
//! ```

use std::fmt;
use std::sync::Arc;

use crate::ast::{Expr, Op, Statement};

/// Parse errors with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Sexp {
    Atom(String, usize),
    Str(String, usize),
    List(Vec<Sexp>, usize),
}

impl Sexp {
    fn offset(&self) -> usize {
        match self {
            Sexp::Atom(_, o) | Sexp::Str(_, o) | Sexp::List(_, o) => *o,
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b';' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn parse_sexp(&mut self) -> Result<Sexp, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Err(ParseError {
                offset: start,
                message: "unexpected end of input".into(),
            });
        }
        match self.src[self.pos] {
            b'(' => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.pos >= self.src.len() {
                        return Err(ParseError {
                            offset: start,
                            message: "unclosed parenthesis".into(),
                        });
                    }
                    if self.src[self.pos] == b')' {
                        self.pos += 1;
                        return Ok(Sexp::List(items, start));
                    }
                    items.push(self.parse_sexp()?);
                }
            }
            b')' => Err(ParseError {
                offset: start,
                message: "unexpected ')'".into(),
            }),
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    if self.src[self.pos] == b'\\' && self.pos + 1 < self.src.len() {
                        self.pos += 1;
                    }
                    s.push(self.src[self.pos] as char);
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(ParseError {
                        offset: start,
                        message: "unterminated string".into(),
                    });
                }
                self.pos += 1;
                Ok(Sexp::Str(s, start))
            }
            _ => {
                let mut s = String::new();
                while self.pos < self.src.len() {
                    let c = self.src[self.pos];
                    if c.is_ascii_whitespace() || c == b'(' || c == b')' || c == b'"' {
                        break;
                    }
                    s.push(c as char);
                    self.pos += 1;
                }
                Ok(Sexp::Atom(s, start))
            }
        }
    }
}

/// Parses a single expression.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
///
/// # Examples
///
/// ```
/// use lambdajdb::parse_expr;
///
/// let e = parse_expr("(label k (facet k \"secret\" \"public\"))").unwrap();
/// assert!(e.to_string().contains("label"));
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
    };
    let sexp = lexer.parse_sexp()?;
    lexer.skip_ws();
    if lexer.pos != src.len() {
        return Err(ParseError {
            offset: lexer.pos,
            message: "trailing input".into(),
        });
    }
    expr_of(&sexp)
}

/// Parses a statement (`print` / `letstmt` / `seq` forms).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
    };
    let sexp = lexer.parse_sexp()?;
    statement_of(&sexp)
}

fn err<T>(offset: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        offset,
        message: message.into(),
    })
}

fn atom_name(s: &Sexp) -> Result<&str, ParseError> {
    match s {
        Sexp::Atom(a, _) => Ok(a),
        other => err(other.offset(), "expected an identifier"),
    }
}

fn expr_of(s: &Sexp) -> Result<Expr, ParseError> {
    match s {
        Sexp::Str(text, _) => Ok(Expr::Str(text.clone())),
        Sexp::Atom(a, o) => {
            if a == "true" {
                Ok(Expr::Bool(true))
            } else if a == "false" {
                Ok(Expr::Bool(false))
            } else if a == "unit" {
                Ok(Expr::Unit)
            } else if let Ok(i) = a.parse::<i64>() {
                Ok(Expr::Int(i))
            } else if a.is_empty() {
                err(*o, "empty atom")
            } else {
                Ok(Expr::Var(a.clone()))
            }
        }
        Sexp::List(items, o) => {
            let Some((head, rest)) = items.split_first() else {
                return err(*o, "empty list");
            };
            let head_name = atom_name(head)?;
            let arity = |n: usize| -> Result<(), ParseError> {
                if rest.len() == n {
                    Ok(())
                } else {
                    err(
                        *o,
                        format!("{head_name} expects {n} arguments, got {}", rest.len()),
                    )
                }
            };
            let bin = |op: Op| -> Result<Expr, ParseError> {
                arity(2)?;
                Ok(Expr::BinOp(
                    op,
                    expr_of(&rest[0])?.rc(),
                    expr_of(&rest[1])?.rc(),
                ))
            };
            match head_name {
                "file" => {
                    arity(1)?;
                    Ok(Expr::File(atom_name(&rest[0])?.to_owned()))
                }
                "lam" => {
                    arity(2)?;
                    Ok(Expr::Lam(
                        atom_name(&rest[0])?.to_owned(),
                        expr_of(&rest[1])?.rc(),
                    ))
                }
                "app" => {
                    arity(2)?;
                    Ok(Expr::App(expr_of(&rest[0])?.rc(), expr_of(&rest[1])?.rc()))
                }
                "let" => {
                    arity(3)?;
                    Ok(Expr::Let(
                        atom_name(&rest[0])?.to_owned(),
                        expr_of(&rest[1])?.rc(),
                        expr_of(&rest[2])?.rc(),
                    ))
                }
                "ref" => {
                    arity(1)?;
                    Ok(Expr::Ref(expr_of(&rest[0])?.rc()))
                }
                "deref" => {
                    arity(1)?;
                    Ok(Expr::Deref(expr_of(&rest[0])?.rc()))
                }
                "assign" => {
                    arity(2)?;
                    Ok(Expr::Assign(
                        expr_of(&rest[0])?.rc(),
                        expr_of(&rest[1])?.rc(),
                    ))
                }
                "facet" => {
                    arity(3)?;
                    Ok(Expr::Facet(
                        expr_of(&rest[0])?.rc(),
                        expr_of(&rest[1])?.rc(),
                        expr_of(&rest[2])?.rc(),
                    ))
                }
                "label" => {
                    arity(2)?;
                    Ok(Expr::LabelIn(
                        atom_name(&rest[0])?.to_owned(),
                        expr_of(&rest[1])?.rc(),
                    ))
                }
                "restrict" => {
                    arity(2)?;
                    Ok(Expr::Restrict(
                        expr_of(&rest[0])?.rc(),
                        expr_of(&rest[1])?.rc(),
                    ))
                }
                "row" => {
                    let fields: Result<Vec<Arc<Expr>>, ParseError> =
                        rest.iter().map(|e| Ok(expr_of(e)?.rc())).collect();
                    Ok(Expr::Row(fields?))
                }
                "select" => {
                    arity(3)?;
                    let i = index_of(&rest[0])?;
                    let j = index_of(&rest[1])?;
                    Ok(Expr::Select(i, j, expr_of(&rest[2])?.rc()))
                }
                "project" => {
                    arity(2)?;
                    let Sexp::List(ixs, _) = &rest[0] else {
                        return err(rest[0].offset(), "project expects a list of column indices");
                    };
                    let ix: Result<Vec<usize>, ParseError> = ixs.iter().map(index_of).collect();
                    Ok(Expr::Project(ix?, expr_of(&rest[1])?.rc()))
                }
                "join" => {
                    arity(2)?;
                    Ok(Expr::Join(expr_of(&rest[0])?.rc(), expr_of(&rest[1])?.rc()))
                }
                "union" => {
                    arity(2)?;
                    Ok(Expr::Union(
                        expr_of(&rest[0])?.rc(),
                        expr_of(&rest[1])?.rc(),
                    ))
                }
                "fold" => {
                    arity(3)?;
                    Ok(Expr::Fold(
                        expr_of(&rest[0])?.rc(),
                        expr_of(&rest[1])?.rc(),
                        expr_of(&rest[2])?.rc(),
                    ))
                }
                "if" => {
                    arity(3)?;
                    Ok(Expr::If(
                        expr_of(&rest[0])?.rc(),
                        expr_of(&rest[1])?.rc(),
                        expr_of(&rest[2])?.rc(),
                    ))
                }
                "+" => bin(Op::Add),
                "-" => bin(Op::Sub),
                "*" => bin(Op::Mul),
                "==" => bin(Op::Eq),
                "<" => bin(Op::Lt),
                "and" => bin(Op::And),
                "or" => bin(Op::Or),
                "concat" => bin(Op::Concat),
                other => err(*o, format!("unknown form {other}")),
            }
        }
    }
}

fn index_of(s: &Sexp) -> Result<usize, ParseError> {
    match s {
        Sexp::Atom(a, o) => a.parse::<usize>().map_err(|_| ParseError {
            offset: *o,
            message: "expected a column index".into(),
        }),
        other => err(other.offset(), "expected a column index"),
    }
}

fn statement_of(s: &Sexp) -> Result<Statement, ParseError> {
    let Sexp::List(items, o) = s else {
        return err(s.offset(), "expected a statement form");
    };
    let Some((head, rest)) = items.split_first() else {
        return err(*o, "empty statement");
    };
    match atom_name(head)? {
        "print" => {
            if rest.len() != 2 {
                return err(*o, "print expects 2 arguments");
            }
            Ok(Statement::Print(expr_of(&rest[0])?, expr_of(&rest[1])?))
        }
        "letstmt" => {
            if rest.len() != 3 {
                return err(*o, "letstmt expects 3 arguments");
            }
            Ok(Statement::Let(
                atom_name(&rest[0])?.to_owned(),
                expr_of(&rest[1])?,
                Box::new(statement_of(&rest[2])?),
            ))
        }
        "seq" => {
            if rest.len() != 2 {
                return err(*o, "seq expects 2 arguments");
            }
            Ok(Statement::Seq(
                Box::new(statement_of(&rest[0])?),
                Box::new(statement_of(&rest[1])?),
            ))
        }
        other => err(*o, format!("unknown statement form {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals() {
        assert_eq!(parse_expr("42").unwrap(), Expr::Int(42));
        assert_eq!(parse_expr("true").unwrap(), Expr::Bool(true));
        assert_eq!(parse_expr("\"hi\"").unwrap(), Expr::str("hi"));
        assert_eq!(parse_expr("unit").unwrap(), Expr::Unit);
        assert_eq!(parse_expr("x").unwrap(), Expr::var("x"));
    }

    #[test]
    fn parses_nested_forms() {
        let e = parse_expr("(let x (+ 1 2) (* x x))").unwrap();
        assert_eq!(
            e,
            Expr::let_in(
                "x",
                Expr::BinOp(Op::Add, Expr::Int(1).rc(), Expr::Int(2).rc()),
                Expr::BinOp(Op::Mul, Expr::var("x").rc(), Expr::var("x").rc()),
            )
        );
    }

    #[test]
    fn parses_relational_forms() {
        let e = parse_expr("(select 0 1 (join (row \"a\" \"a\") (row \"b\")))").unwrap();
        match e {
            Expr::Select(0, 1, _) => {}
            other => panic!("unexpected {other:?}"),
        }
        let p = parse_expr("(project (1 0) (row \"a\" \"b\"))").unwrap();
        assert!(matches!(p, Expr::Project(ref ix, _) if ix == &vec![1, 0]));
    }

    #[test]
    fn parses_statements() {
        let s =
            parse_statement("(letstmt v (file alice) (print v (facet k \"s\" \"p\")))").unwrap();
        assert!(matches!(s, Statement::Let(..)));
    }

    #[test]
    fn comments_are_skipped() {
        let e = parse_expr("; a comment\n(+ 1 ; inline\n 2)").unwrap();
        assert!(matches!(e, Expr::BinOp(Op::Add, _, _)));
    }

    #[test]
    fn error_reporting() {
        assert!(parse_expr("(").is_err());
        assert!(parse_expr(")").is_err());
        assert!(parse_expr("(unknown-form 1)").is_err());
        assert!(parse_expr("\"unterminated").is_err());
        assert!(parse_expr("(+ 1 2) trailing").is_err());
    }
}
