//! Evaluation errors ("stuck" states of the semantics).

use std::error::Error;
use std::fmt;

/// Ways a λ<sub>JDB</sub> program can get stuck.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EvalError {
    /// A free variable was evaluated (programs must be closed).
    UnboundVariable(String),
    /// A non-closure was applied.
    NotAFunction(String),
    /// A non-label appeared in facet/restrict label position.
    NotALabel(String),
    /// A non-address appeared in a dereference/assignment.
    NotAnAddress(String),
    /// A non-Boolean condition.
    NotABool(String),
    /// Row fields must be strings.
    RowFieldNotString(String),
    /// A relational operator was applied to a non-table.
    ExpectedTable,
    /// A strict scalar position received a table.
    ExpectedNonTable,
    /// `⟨⟨k ? V₁ : V₂⟩⟩` mixed a table with a non-table (the paper's
    /// footnote-1 stuck case).
    MixedFacet,
    /// A column index was out of bounds for a row.
    ColumnOutOfBounds {
        /// Requested index.
        index: usize,
        /// Row width.
        width: usize,
    },
    /// Ill-typed primitive operation.
    TypeError(String),
    /// A policy did not evaluate to a Boolean check.
    BadPolicy(String),
    /// The print sink could not find a satisfying label assignment
    /// (only possible with ill-formed policies).
    NoValidAssignment,
    /// `print` channel position did not resolve to a file handle.
    NotAFile(String),
    /// Evaluation exceeded its fuel budget.
    OutOfFuel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            EvalError::NotAFunction(v) => write!(f, "cannot apply non-function {v}"),
            EvalError::NotALabel(v) => write!(f, "expected a label, got {v}"),
            EvalError::NotAnAddress(v) => write!(f, "expected an address, got {v}"),
            EvalError::NotABool(v) => write!(f, "expected a boolean, got {v}"),
            EvalError::RowFieldNotString(v) => write!(f, "row fields must be strings, got {v}"),
            EvalError::ExpectedTable => write!(f, "relational operator applied to a non-table"),
            EvalError::ExpectedNonTable => write!(f, "table value in scalar position"),
            EvalError::MixedFacet => {
                write!(f, "faceted value mixes a table with a non-table (stuck)")
            }
            EvalError::ColumnOutOfBounds { index, width } => {
                write!(f, "column {index} out of bounds for row of width {width}")
            }
            EvalError::TypeError(m) => write!(f, "type error: {m}"),
            EvalError::BadPolicy(m) => write!(f, "policy error: {m}"),
            EvalError::NoValidAssignment => write!(f, "no label assignment satisfies the policies"),
            EvalError::NotAFile(v) => write!(f, "print channel is not a file handle: {v}"),
            EvalError::OutOfFuel => write!(f, "evaluation exceeded fuel budget"),
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!EvalError::OutOfFuel.to_string().is_empty());
        assert!(EvalError::UnboundVariable("x".into())
            .to_string()
            .contains('x'));
    }
}
