//! View projection `L(·)` over values, expressions and stores (§4.3).
//!
//! Projection is the bridge between faceted execution and the
//! metatheory: Theorem 1 (Projection) says a faceted run projects,
//! view by view, to standard runs of the projected program. The
//! property tests in `tests/theorems.rs` execute exactly that
//! statement.

use faceted::{Faceted, FacetedList, View};

use crate::ast::Expr;
use crate::eval::Store;
use crate::value::{RawValue, Val};

/// Projects a raw value: closures project their bodies (the paper
/// extends `L` homomorphically to all expression forms).
#[must_use]
pub fn project_raw(r: &RawValue, view: &View) -> RawValue {
    match r {
        RawValue::Closure(p, body) => RawValue::Closure(p.clone(), project_expr(body, view).rc()),
        other => other.clone(),
    }
}

/// Projects a value: `L(⟨k ? F₁ : F₂⟩)` picks the facet by `k ∈ L`;
/// `L(table T)` keeps the rows visible to `L`, unguarded.
///
/// Tables are semantically multisets (the paper defines the relational
/// rules with set comprehensions), so the projection is returned in
/// canonical sorted order — physical row order is not observable.
#[must_use]
pub fn project_val(v: &Val, view: &View) -> Val {
    match v {
        Val::F(f) => Val::F(Faceted::leaf(project_raw(f.project(view), view))),
        Val::Table(t) => {
            let mut rows: Vec<_> = t.project(view).into_iter().cloned().collect();
            rows.sort();
            Val::Table(FacetedList::from_public(rows))
        }
    }
}

/// Projects an expression: faceted expressions with concrete labels
/// resolve to one side; all other forms project recursively.
#[must_use]
pub fn project_expr(e: &Expr, view: &View) -> Expr {
    let p = |e: &Expr| project_expr(e, view).rc();
    match e {
        Expr::Facet(k, h, l) => {
            if let Expr::LabelLit(label) = &**k {
                if view.sees(*label) {
                    project_expr(h, view)
                } else {
                    project_expr(l, view)
                }
            } else {
                Expr::Facet(p(k), p(h), p(l))
            }
        }
        Expr::TableLit(t) => {
            let rows = t.project(view).into_iter().cloned();
            Expr::TableLit(FacetedList::from_public(rows))
        }
        Expr::Unit
        | Expr::Bool(_)
        | Expr::Int(_)
        | Expr::Str(_)
        | Expr::File(_)
        | Expr::Var(_)
        | Expr::Addr(_)
        | Expr::LabelLit(_) => e.clone(),
        Expr::Lam(x, b) => Expr::Lam(x.clone(), p(b)),
        Expr::App(a, b) => Expr::App(p(a), p(b)),
        Expr::Ref(a) => Expr::Ref(p(a)),
        Expr::Deref(a) => Expr::Deref(p(a)),
        Expr::Assign(a, b) => Expr::Assign(p(a), p(b)),
        Expr::LabelIn(k, b) => Expr::LabelIn(k.clone(), p(b)),
        Expr::Restrict(a, b) => Expr::Restrict(p(a), p(b)),
        Expr::Row(es) => Expr::Row(es.iter().map(|e| p(e)).collect()),
        Expr::Select(i, j, a) => Expr::Select(*i, *j, p(a)),
        Expr::Project(ix, a) => Expr::Project(ix.clone(), p(a)),
        Expr::Join(a, b) => Expr::Join(p(a), p(b)),
        Expr::Union(a, b) => Expr::Union(p(a), p(b)),
        Expr::Fold(a, b, c) => Expr::Fold(p(a), p(b), p(c)),
        Expr::If(a, b, c) => Expr::If(p(a), p(b), p(c)),
        Expr::BinOp(op, a, b) => Expr::BinOp(*op, p(a), p(b)),
        Expr::Let(x, a, b) => Expr::Let(x.clone(), p(a), p(b)),
    }
}

/// Projects every cell of a store (the `L(Σ)` of the theorems).
#[must_use]
pub fn project_store_cells(store: &Store, view: &View) -> Vec<Val> {
    store.cells().iter().map(|v| project_val(v, view)).collect()
}

/// Whether two values are `L`-equivalent: identical under `L`'s view.
#[must_use]
pub fn l_equivalent(a: &Val, b: &Val, view: &View) -> bool {
    project_val(a, view) == project_val(b, view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faceted::{Branches, Label};

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn project_scalar_value() {
        let v = Val::F(Faceted::split(
            k(0),
            Faceted::leaf(RawValue::Int(1)),
            Faceted::leaf(RawValue::Int(2)),
        ));
        assert_eq!(project_val(&v, &View::from_labels([k(0)])), Val::int(1));
        assert_eq!(project_val(&v, &View::empty()), Val::int(2));
    }

    #[test]
    fn project_table_keeps_visible_rows() {
        let mut t = FacetedList::new();
        t.push(
            Branches::new().with(faceted::Branch::pos(k(0))),
            vec!["secret".to_owned()],
        );
        t.push(Branches::new(), vec!["public".to_owned()]);
        let v = Val::Table(t);
        let lo = project_val(&v, &View::empty());
        assert_eq!(lo.as_table().unwrap().len(), 1);
        let hi = project_val(&v, &View::from_labels([k(0)]));
        assert_eq!(hi.as_table().unwrap().len(), 2);
    }

    #[test]
    fn project_expr_resolves_concrete_facets() {
        let e = Expr::facet(k(0), Expr::Int(1), Expr::Int(2));
        assert_eq!(project_expr(&e, &View::from_labels([k(0)])), Expr::Int(1));
        assert_eq!(project_expr(&e, &View::empty()), Expr::Int(2));
    }

    #[test]
    fn project_expr_recurses_into_closures() {
        let e = Expr::lam("x", Expr::facet(k(0), Expr::var("x"), Expr::Int(0)));
        let p = project_expr(&e, &View::empty());
        assert_eq!(p, Expr::lam("x", Expr::Int(0)));
    }

    #[test]
    fn l_equivalence_ignores_hidden_facets() {
        let a = Val::F(Faceted::split(
            k(0),
            Faceted::leaf(RawValue::Int(1)),
            Faceted::leaf(RawValue::Int(2)),
        ));
        let b = Val::F(Faceted::split(
            k(0),
            Faceted::leaf(RawValue::Int(99)),
            Faceted::leaf(RawValue::Int(2)),
        ));
        assert!(l_equivalent(&a, &b, &View::empty()));
        assert!(!l_equivalent(&a, &b, &View::from_labels([k(0)])));
    }
}
