//! Abstract syntax of λ<sub>JDB</sub> (Figure 3 of the paper, plus the
//! runtime syntax of Figure 4).
//!
//! The λ<sub>jeeves</sub> subset: variables, constants, λ-abstraction,
//! application, references, faceted expressions, `label k in e`,
//! `restrict(k, e)`. The λ<sub>JDB</sub> extension: `row`, selection
//! `σ`, projection `π`, join `⋈`, union `∪`, and `fold`. Runtime
//! syntax adds addresses, concrete labels, and table values, so that
//! (following the paper) evaluation is substitution-based and values
//! are a subset of expressions.

use std::fmt;
use std::sync::Arc;

use faceted::{Branches, FacetedList, Label};

/// A database row: a sequence of strings (the paper fixes row fields
/// to strings).
pub type RowStrings = Vec<String>;

/// A faceted table: rows guarded by branch sets.
pub type Table = FacetedList<RowStrings>;

/// Primitive binary operators (the "standard imperative λ-calculus"
/// operations λ<sub>jeeves</sub> builds on).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Equality on constants (ints, bools, strings).
    Eq,
    /// Integer less-than.
    Lt,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// String concatenation.
    Concat,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "+",
            Op::Sub => "-",
            Op::Mul => "*",
            Op::Eq => "==",
            Op::Lt => "<",
            Op::And => "&&",
            Op::Or => "||",
            Op::Concat => "++",
        };
        f.write_str(s)
    }
}

/// λ<sub>JDB</sub> expressions.
///
/// Source syntax refers to labels through bound variables
/// (`label k in e` binds `k`); at runtime labels are the concrete
/// [`Expr::LabelLit`] values substituted for those variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Unit constant.
    Unit,
    /// Boolean constant.
    Bool(bool),
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
    /// File handle constant (an output channel for `print`).
    File(String),
    /// Variable.
    Var(String),
    /// λ-abstraction.
    Lam(String, Arc<Expr>),
    /// Application `e₁ e₂`.
    App(Arc<Expr>, Arc<Expr>),
    /// Reference allocation `ref e`.
    Ref(Arc<Expr>),
    /// Dereference `!e`.
    Deref(Arc<Expr>),
    /// Assignment `e₁ := e₂`.
    Assign(Arc<Expr>, Arc<Expr>),
    /// Faceted expression `⟨k ? e_H : e_L⟩`; the first position is an
    /// expression that must evaluate to a label.
    Facet(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// `label k in e`: allocate a fresh label (default policy
    /// `λx.true`) and bind it to `k` in `e` (rule `F-LABEL`).
    LabelIn(String, Arc<Expr>),
    /// `restrict(k, e)`: attach policy `e` to the label `k` evaluates
    /// to (rule `F-RESTRICT`).
    Restrict(Arc<Expr>, Arc<Expr>),
    /// `row e…`: a one-row table (fields must evaluate to strings).
    Row(Vec<Arc<Expr>>),
    /// Selection `σ_{i=j} e`: rows whose fields `i` and `j` coincide.
    Select(usize, usize, Arc<Expr>),
    /// Projection `π_ī e`: keep columns `ī`.
    Project(Vec<usize>, Arc<Expr>),
    /// Join (cross product) `e₁ ⋈ e₂`.
    Join(Arc<Expr>, Arc<Expr>),
    /// Union `e₁ ∪ e₂`.
    Union(Arc<Expr>, Arc<Expr>),
    /// `fold f acc table` (rule `F-FOLD-*`; the row is passed to `f`
    /// as a single-row table).
    Fold(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Conditional (faceted conditions split execution).
    If(Arc<Expr>, Arc<Expr>, Arc<Expr>),
    /// Primitive binary operation (strict in both operands).
    BinOp(Op, Arc<Expr>, Arc<Expr>),
    /// `let x = e in body` (sugar for application, kept for
    /// readability of programs and traces).
    Let(String, Arc<Expr>, Arc<Expr>),
    /// Runtime: a store address.
    Addr(usize),
    /// Runtime: a concrete label value.
    LabelLit(Label),
    /// Runtime: a table value.
    TableLit(Table),
}

impl Expr {
    /// Convenience: shared-pointer wrap.
    #[must_use]
    pub fn rc(self) -> Arc<Expr> {
        Arc::new(self)
    }

    /// A string literal.
    #[must_use]
    pub fn str(s: &str) -> Expr {
        Expr::Str(s.to_owned())
    }

    /// A variable.
    #[must_use]
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_owned())
    }

    /// A λ-abstraction.
    #[must_use]
    pub fn lam(param: &str, body: Expr) -> Expr {
        Expr::Lam(param.to_owned(), body.rc())
    }

    /// An application.
    #[must_use]
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(f.rc(), a.rc())
    }

    /// A let binding.
    #[must_use]
    pub fn let_in(name: &str, bound: Expr, body: Expr) -> Expr {
        Expr::Let(name.to_owned(), bound.rc(), body.rc())
    }

    /// A faceted expression with a concrete label.
    #[must_use]
    pub fn facet(label: Label, high: Expr, low: Expr) -> Expr {
        Expr::Facet(Expr::LabelLit(label).rc(), high.rc(), low.rc())
    }

    /// Capture-avoiding substitution `self[x := v]`, where `v` is a
    /// *value expression* (closed), so no capture can occur through it;
    /// binders shadow as usual.
    #[must_use]
    pub fn subst(&self, x: &str, v: &Expr) -> Expr {
        match self {
            Expr::Var(y) => {
                if y == x {
                    v.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Unit
            | Expr::Bool(_)
            | Expr::Int(_)
            | Expr::Str(_)
            | Expr::File(_)
            | Expr::Addr(_)
            | Expr::LabelLit(_)
            | Expr::TableLit(_) => self.clone(),
            Expr::Lam(p, b) => {
                if p == x {
                    self.clone()
                } else {
                    Expr::Lam(p.clone(), b.subst(x, v).rc())
                }
            }
            Expr::App(f, a) => Expr::App(f.subst(x, v).rc(), a.subst(x, v).rc()),
            Expr::Ref(e) => Expr::Ref(e.subst(x, v).rc()),
            Expr::Deref(e) => Expr::Deref(e.subst(x, v).rc()),
            Expr::Assign(a, b) => Expr::Assign(a.subst(x, v).rc(), b.subst(x, v).rc()),
            Expr::Facet(k, h, l) => {
                Expr::Facet(k.subst(x, v).rc(), h.subst(x, v).rc(), l.subst(x, v).rc())
            }
            Expr::LabelIn(k, e) => {
                if k == x {
                    self.clone()
                } else {
                    Expr::LabelIn(k.clone(), e.subst(x, v).rc())
                }
            }
            Expr::Restrict(k, e) => Expr::Restrict(k.subst(x, v).rc(), e.subst(x, v).rc()),
            Expr::Row(es) => Expr::Row(es.iter().map(|e| e.subst(x, v).rc()).collect()),
            Expr::Select(i, j, e) => Expr::Select(*i, *j, e.subst(x, v).rc()),
            Expr::Project(ix, e) => Expr::Project(ix.clone(), e.subst(x, v).rc()),
            Expr::Join(a, b) => Expr::Join(a.subst(x, v).rc(), b.subst(x, v).rc()),
            Expr::Union(a, b) => Expr::Union(a.subst(x, v).rc(), b.subst(x, v).rc()),
            Expr::Fold(f, p, t) => {
                Expr::Fold(f.subst(x, v).rc(), p.subst(x, v).rc(), t.subst(x, v).rc())
            }
            Expr::If(c, t, e) => {
                Expr::If(c.subst(x, v).rc(), t.subst(x, v).rc(), e.subst(x, v).rc())
            }
            Expr::BinOp(op, a, b) => Expr::BinOp(*op, a.subst(x, v).rc(), b.subst(x, v).rc()),
            Expr::Let(y, bound, body) => {
                let bound = bound.subst(x, v).rc();
                if y == x {
                    Expr::Let(y.clone(), bound, body.clone())
                } else {
                    Expr::Let(y.clone(), bound, body.subst(x, v).rc())
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Unit => write!(f, "()"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::File(name) => write!(f, "#file:{name}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Lam(p, b) => write!(f, "(λ{p}. {b})"),
            Expr::App(a, b) => write!(f, "({a} {b})"),
            Expr::Ref(e) => write!(f, "(ref {e})"),
            Expr::Deref(e) => write!(f, "(!{e})"),
            Expr::Assign(a, b) => write!(f, "({a} := {b})"),
            Expr::Facet(k, h, l) => write!(f, "⟨{k} ? {h} : {l}⟩"),
            Expr::LabelIn(k, e) => write!(f, "(label {k} in {e})"),
            Expr::Restrict(k, e) => write!(f, "restrict({k}, {e})"),
            Expr::Row(es) => {
                write!(f, "(row")?;
                for e in es {
                    write!(f, " {e}")?;
                }
                write!(f, ")")
            }
            Expr::Select(i, j, e) => write!(f, "σ[{i}={j}]({e})"),
            Expr::Project(ix, e) => {
                write!(f, "π[")?;
                for (n, i) in ix.iter().enumerate() {
                    if n > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}")?;
                }
                write!(f, "]({e})")
            }
            Expr::Join(a, b) => write!(f, "({a} ⋈ {b})"),
            Expr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            Expr::Fold(g, p, t) => write!(f, "(fold {g} {p} {t})"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::BinOp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Let(x, bound, body) => write!(f, "(let {x} = {bound} in {body})"),
            Expr::Addr(a) => write!(f, "#addr:{a}"),
            Expr::LabelLit(l) => write!(f, "{l}"),
            Expr::TableLit(t) => {
                write!(f, "(table")?;
                for (b, row) in t.iter() {
                    write!(f, " ({b:?}, {row:?})")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A λ<sub>JDB</sub> statement (Figure 3).
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `let x = e in S`.
    Let(String, Expr, Box<Statement>),
    /// `print {e_viewer} e_result`: the computation sink.
    Print(Expr, Expr),
    /// Sequencing of prints (convenience for whole programs).
    Seq(Box<Statement>, Box<Statement>),
}

/// Builds a single-row table from field strings (used by tests and by
/// `F-ROW`).
#[must_use]
pub fn single_row(fields: RowStrings) -> Table {
    let mut t = Table::new();
    t.push(Branches::new(), fields);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_replaces_free_occurrences() {
        let e = Expr::app(Expr::var("x"), Expr::lam("x", Expr::var("x")));
        let s = e.subst("x", &Expr::Int(1));
        assert_eq!(
            s,
            Expr::app(Expr::Int(1), Expr::lam("x", Expr::var("x"))),
            "binder must shadow"
        );
    }

    #[test]
    fn subst_respects_let_shadowing() {
        let e = Expr::let_in("x", Expr::var("x"), Expr::var("x"));
        let s = e.subst("x", &Expr::Int(7));
        // The bound expression is substituted; the body is shadowed.
        assert_eq!(s, Expr::let_in("x", Expr::Int(7), Expr::var("x")));
    }

    #[test]
    fn subst_respects_label_binder() {
        let e = Expr::LabelIn("k".into(), Expr::var("k").rc());
        assert_eq!(e.subst("k", &Expr::Int(1)), e);
        let e2 = Expr::LabelIn("k".into(), Expr::var("x").rc());
        assert_eq!(
            e2.subst("x", &Expr::Int(1)),
            Expr::LabelIn("k".into(), Expr::Int(1).rc())
        );
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::facet(
            Label::from_index(0),
            Expr::str("secret"),
            Expr::str("public"),
        );
        assert_eq!(e.to_string(), "⟨k0 ? \"secret\" : \"public\"⟩");
    }
}
