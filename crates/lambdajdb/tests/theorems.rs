//! The paper's metatheory, executed: Theorem 1 (Projection), Theorem 2
//! (Termination-Insensitive Non-Interference), and the `F-PRUNE`
//! extension (§4.4), checked on randomly generated *typed* λJDB
//! programs over a pre-populated store.
//!
//! Programs are generated without `ref` so the faceted run and its
//! projections allocate identically (the theorem's "without loss of
//! generality, both evaluations allocate the same address" wart);
//! `deref`/`assign` against the pre-allocated cells still exercise the
//! store rules in depth.

use faceted::{Branch, Branches, Faceted, Label, View};
use lambdajdb::{project_expr, project_val, Expr, Interp, Op, RawValue, Val};
use proptest::prelude::*;

const LABELS: u32 = 3;
const CELLS: usize = 4;

fn k(i: u32) -> Label {
    Label::from_index(i)
}

fn all_views() -> Vec<View> {
    (0..(1u32 << LABELS))
        .map(|bits| {
            View::from_labels(
                (0..LABELS)
                    .filter(|i| bits & (1 << i) != 0)
                    .map(Label::from_index),
            )
        })
        .collect()
}

fn arb_label() -> impl Strategy<Value = Label> {
    (0..LABELS).prop_map(Label::from_index)
}

fn rc(e: Expr) -> std::sync::Arc<Expr> {
    e.rc()
}

fn arb_int(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![
            (0i64..5).prop_map(Expr::Int),
            (0..CELLS).prop_map(|a| Expr::Deref(rc(Expr::Addr(a)))),
        ]
        .boxed()
    } else {
        let d = depth - 1;
        prop_oneof![
            2 => arb_int(0),
            2 => (arb_int(d), arb_int(d)).prop_map(|(a, b)| Expr::BinOp(Op::Add, rc(a), rc(b))),
            2 => (arb_label(), arb_int(d), arb_int(d))
                .prop_map(|(l, a, b)| Expr::facet(l, a, b)),
            2 => (arb_bool(d), arb_int(d), arb_int(d))
                .prop_map(|(c, a, b)| Expr::If(rc(c), rc(a), rc(b))),
            1 => (0..CELLS, arb_int(d)).prop_map(|(a, e)| Expr::Assign(rc(Expr::Addr(a)), rc(e))),
            1 => arb_table(d).prop_map(|t| {
                // fold (λr. λacc. acc + 1) 0 t — count rows.
                Expr::Fold(
                    rc(Expr::lam("r", Expr::lam("acc", Expr::BinOp(
                        Op::Add,
                        rc(Expr::var("acc")),
                        rc(Expr::Int(1)),
                    )))),
                    rc(Expr::Int(0)),
                    rc(t),
                )
            }),
            1 => (arb_int(d), arb_int(d)).prop_map(|(a, b)| Expr::let_in(
                "v",
                a,
                Expr::BinOp(Op::Add, rc(Expr::var("v")), rc(b)),
            )),
        ]
        .boxed()
    }
}

fn arb_bool(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        any::<bool>().prop_map(Expr::Bool).boxed()
    } else {
        let d = depth - 1;
        prop_oneof![
            2 => arb_bool(0),
            2 => (arb_int(d), arb_int(d)).prop_map(|(a, b)| Expr::BinOp(Op::Eq, rc(a), rc(b))),
            1 => (arb_int(d), arb_int(d)).prop_map(|(a, b)| Expr::BinOp(Op::Lt, rc(a), rc(b))),
            1 => (arb_bool(d), arb_bool(d)).prop_map(|(a, b)| Expr::BinOp(Op::And, rc(a), rc(b))),
            1 => (arb_bool(d), arb_bool(d)).prop_map(|(a, b)| Expr::BinOp(Op::Or, rc(a), rc(b))),
            2 => (arb_label(), arb_bool(d), arb_bool(d))
                .prop_map(|(l, a, b)| Expr::facet(l, a, b)),
        ]
        .boxed()
    }
}

fn arb_str(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof!["[abc]".prop_map(Expr::Str)].boxed()
    } else {
        let d = depth - 1;
        prop_oneof![
            3 => arb_str(0),
            2 => (arb_str(d), arb_str(d)).prop_map(|(a, b)| Expr::BinOp(Op::Concat, rc(a), rc(b))),
            2 => (arb_label(), arb_str(d), arb_str(d))
                .prop_map(|(l, a, b)| Expr::facet(l, a, b)),
            1 => (arb_bool(d), arb_str(d), arb_str(d))
                .prop_map(|(c, a, b)| Expr::If(rc(c), rc(a), rc(b))),
        ]
        .boxed()
    }
}

/// Width-2 tables.
fn arb_table(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        (arb_str(0), arb_str(0))
            .prop_map(|(a, b)| Expr::Row(vec![rc(a), rc(b)]))
            .boxed()
    } else {
        let d = depth - 1;
        prop_oneof![
            2 => (arb_str(d), arb_str(d)).prop_map(|(a, b)| Expr::Row(vec![rc(a), rc(b)])),
            2 => (arb_table(d), arb_table(d)).prop_map(|(a, b)| Expr::Union(rc(a), rc(b))),
            1 => arb_table(d).prop_map(|t| Expr::Select(0, 1, rc(t))),
            1 => arb_table(d).prop_map(|t| Expr::Project(vec![1, 0], rc(t))),
            2 => (arb_label(), arb_table(d), arb_table(d))
                .prop_map(|(l, a, b)| Expr::facet(l, a, b)),
            1 => (arb_bool(d), arb_table(d), arb_table(d))
                .prop_map(|(c, a, b)| Expr::If(rc(c), rc(a), rc(b))),
        ]
        .boxed()
    }
}

fn arb_expr() -> BoxedStrategy<Expr> {
    prop_oneof![
        3 => arb_int(3),
        1 => arb_bool(3),
        1 => arb_str(3),
        3 => arb_table(3),
        1 => (arb_table(2), arb_table(2)).prop_map(|(a, b)| Expr::Join(a.rc(), b.rc())),
    ]
    .boxed()
}

fn arb_cell() -> impl Strategy<Value = Faceted<RawValue>> {
    let leaf = (0i64..5).prop_map(|i| Faceted::leaf(RawValue::Int(i)));
    leaf.prop_recursive(3, 16, 2, |inner| {
        (arb_label(), inner.clone(), inner).prop_map(|(l, h, w)| Faceted::split(l, h, w))
    })
}

fn make_interp(cells: &[Faceted<RawValue>]) -> Interp {
    let mut interp = Interp::new();
    for c in cells {
        interp.store.alloc(Val::F(c.clone()));
    }
    interp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// **Theorem 1 (Projection).** If Σ,e ⇓_∅ Σ′,V then for every view
    /// L: L(Σ), L(e) ⇓_∅ L(Σ′), L(V).
    #[test]
    fn projection_theorem(e in arb_expr(), cells in proptest::collection::vec(arb_cell(), CELLS)) {
        let mut faceted_run = make_interp(&cells);
        let Ok(v) = faceted_run.eval(&e) else { return Ok(()); };

        for view in all_views() {
            let projected_cells: Vec<Faceted<RawValue>> = cells
                .iter()
                .map(|c| Faceted::leaf(c.project(&view).clone()))
                .collect();
            let mut std_run = make_interp(&projected_cells);
            let pe = project_expr(&e, &view);
            let pv = std_run
                .eval(&pe)
                .expect("projected run of a converging faceted run must converge");
            // Compare through projection on both sides: tables are
            // multisets, and project_val canonicalizes row order.
            prop_assert_eq!(
                project_val(&pv, &view),
                project_val(&v, &view),
                "value at view {:?}", view
            );
            for (i, cell) in faceted_run.store.cells().iter().enumerate() {
                prop_assert_eq!(
                    &std_run.store.cells()[i],
                    &project_val(cell, &view),
                    "cell {} at view {:?}", i, view
                );
            }
        }
    }

    /// **Theorem 2 (TINI).** L-equivalent stores and expressions yield
    /// L-equivalent results and stores. We construct the L-equivalent
    /// pair by hiding arbitrary alternative computations (with their
    /// own side effects!) behind a label L sees through.
    #[test]
    fn non_interference(
        e in arb_int(3),
        e_alt in arb_int(3),
        cells in proptest::collection::vec(arb_cell(), CELLS),
        alt_cells in proptest::collection::vec(0i64..5, CELLS),
        hide in arb_label(),
    ) {
        // Run 1: the base program on the base store.
        let mut run1 = make_interp(&cells);
        let Ok(v1) = run1.eval(&e) else { return Ok(()); };

        // Run 2: every cell and the program itself carry a hidden
        // alternative facet behind `hide`.
        let cells2: Vec<Faceted<RawValue>> = cells
            .iter()
            .zip(&alt_cells)
            .map(|(c, alt)| {
                Faceted::split(hide, c.clone(), Faceted::leaf(RawValue::Int(*alt)))
            })
            .collect();
        let e2 = Expr::facet(hide, e.clone(), e_alt.clone());
        let mut run2 = make_interp(&cells2);
        let Ok(v2) = run2.eval(&e2) else { return Ok(()); };

        // Every view that sees `hide` considered the two runs
        // L-equivalent inputs; their outputs must be L-equivalent.
        for view in all_views() {
            if !view.sees(hide) {
                continue;
            }
            prop_assert_eq!(
                project_val(&v1, &view),
                project_val(&v2, &view),
                "result at view {:?}", view
            );
            for i in 0..CELLS {
                prop_assert_eq!(
                    project_val(&run1.store.cells()[i], &view),
                    project_val(&run2.store.cells()[i], &view),
                    "cell {} at view {:?}", i, view
                );
            }
        }
    }

    /// **F-PRUNE (§4.4).** Early pruning under a viewer speculation
    /// never changes what any view consistent with the speculation
    /// observes — results *and* store effects.
    #[test]
    fn pruning_preserves_projection(
        e in arb_expr(),
        cells in proptest::collection::vec(arb_cell(), CELLS),
        spec_label in arb_label(),
        spec_pol in any::<bool>(),
    ) {
        let spec = Branches::new().with(if spec_pol {
            Branch::pos(spec_label)
        } else {
            Branch::neg(spec_label)
        });

        let mut plain = make_interp(&cells);
        let Ok(v_plain) = plain.eval(&e) else { return Ok(()); };

        let mut pruned_interp = Interp::with_pruning(spec.clone());
        for c in &cells {
            pruned_interp.store.alloc(Val::F(c.clone()));
        }
        let v_pruned = pruned_interp
            .eval(&e)
            .expect("pruning must not introduce failures");

        for view in all_views() {
            if !spec.visible_to(&view) {
                continue;
            }
            prop_assert_eq!(
                project_val(&v_plain, &view),
                project_val(&v_pruned, &view),
                "view {:?}", view
            );
            for i in 0..CELLS {
                prop_assert_eq!(
                    project_val(&plain.store.cells()[i], &view),
                    project_val(&pruned_interp.store.cells()[i], &view),
                    "cell {} at view {:?}", i, view
                );
            }
        }
    }

    /// Policy compliance: printing a value guarded by a label whose
    /// policy denies the viewer never reveals the secret facet.
    #[test]
    fn policy_compliance_at_sink(secret in 0i64..100, public in 0i64..100, allow in any::<bool>()) {
        use lambdajdb::{parse_statement};
        let program = parse_statement(&format!(
            "(letstmt secret
               (label k (let a (restrict k (lam v {})) k))
               (print (file u) (facet secret {secret} {public})))",
            if allow { "true" } else { "false" },
        )).unwrap();
        let out = Interp::new().run(&program).unwrap();
        let expected = if allow { secret } else { public };
        prop_assert_eq!(&out[0].rendered, &expected.to_string());
    }
}

#[test]
fn projection_of_paper_table1_example() {
    // Table 1: the event row stored as secret/public rows; check the
    // projected query result for both viewers.
    let e = lambdajdb::parse_expr(
        "(select 1 2 (join
            (facet (label l l) (row \"Carol's party\" \"Schloss Dagstuhl\")
                               (row \"Private event\" \"Undisclosed\"))
            (row \"Schloss Dagstuhl\")))",
    )
    .unwrap();
    // `label l l` allocates label 0 and returns it.
    let mut interp = Interp::new();
    let v = interp.eval(&e).unwrap();
    let guest = View::from_labels([k(0)]);
    match project_val(&v, &guest) {
        Val::Table(t) => assert_eq!(t.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
    match project_val(&v, &View::empty()) {
        Val::Table(t) => assert!(t.is_empty(), "outsiders must not see the match"),
        other => panic!("unexpected {other:?}"),
    }
}
