//! Rule-by-rule tests of the λJDB semantics, following the paper's
//! running examples.

use faceted::{Branch, Branches, Label, View};
use lambdajdb::{
    parse_expr, parse_statement, project_val, EvalError, Expr, Interp, Statement, Val,
};

fn eval(src: &str) -> Result<Val, EvalError> {
    Interp::new().eval(&parse_expr(src).unwrap())
}

fn eval_ok(src: &str) -> Val {
    eval(src).unwrap()
}

fn project_rows(v: &Val, view: &View) -> Vec<Vec<String>> {
    match project_val(v, view) {
        Val::Table(t) => t.iter().map(|(_, r)| r.clone()).collect(),
        other => panic!("expected table, got {other:?}"),
    }
}

#[test]
fn f_val_constants() {
    assert_eq!(eval_ok("42"), Val::int(42));
    assert_eq!(eval_ok("true"), Val::bool(true));
    assert_eq!(eval_ok("\"hi\""), Val::str("hi"));
}

#[test]
fn f_app_beta_reduction() {
    assert_eq!(eval_ok("(app (lam x (+ x 1)) 41)"), Val::int(42));
    assert_eq!(eval_ok("(let x 3 (* x x))"), Val::int(9));
}

#[test]
fn f_split_joins_both_branches() {
    let v = eval_ok("(label k (facet k 1 2))");
    let k = Label::from_index(0);
    assert_eq!(project_val(&v, &View::from_labels([k])), Val::int(1));
    assert_eq!(project_val(&v, &View::empty()), Val::int(2));
}

#[test]
fn f_left_right_respect_pc() {
    // Nested facet on the same label: inner one resolves by pc.
    let v = eval_ok("(label k (facet k (facet k 1 2) 3))");
    let k = Label::from_index(0);
    assert_eq!(project_val(&v, &View::from_labels([k])), Val::int(1));
    assert_eq!(project_val(&v, &View::empty()), Val::int(3));
}

#[test]
fn f_strict_distributes_over_operators() {
    // "Alice's events: " ++ ⟨k ? party : private⟩ (§2.2).
    let v = eval_ok(
        "(label k (concat \"Alice's events: \" (facet k \"Carol's surprise party\" \"Private event\")))",
    );
    let k = Label::from_index(0);
    assert_eq!(
        project_val(&v, &View::from_labels([k])),
        Val::str("Alice's events: Carol's surprise party")
    );
    assert_eq!(
        project_val(&v, &View::empty()),
        Val::str("Alice's events: Private event")
    );
}

#[test]
fn f_strict_on_faceted_function_position() {
    let v = eval_ok("(label k (app (facet k (lam x (+ x 1)) (lam x (* x 10))) 4))");
    let k = Label::from_index(0);
    assert_eq!(project_val(&v, &View::from_labels([k])), Val::int(5));
    assert_eq!(project_val(&v, &View::empty()), Val::int(40));
}

#[test]
fn f_ref_deref_assign_roundtrip() {
    assert_eq!(
        eval_ok("(let r (ref 1) (let tmp (assign r 5) (deref r)))"),
        Val::int(5)
    );
}

#[test]
fn f_deref_null_reads_zero() {
    // Address 99 was never allocated: [F-DEREF-NULL].
    let mut interp = Interp::new();
    let v = interp.eval(&Expr::Deref(Expr::Addr(99).rc())).unwrap();
    assert_eq!(v, Val::int(0));
}

#[test]
fn implicit_flow_through_conditional_assignment() {
    // if ⟨k ? true : false⟩ then r := 1 — the write is guarded by k.
    let v = eval_ok(
        "(label k (let r (ref 0)
            (let tmp (if (facet k true false) (assign r 1) 0)
              (deref r))))",
    );
    let k = Label::from_index(0);
    assert_eq!(project_val(&v, &View::from_labels([k])), Val::int(1));
    assert_eq!(
        project_val(&v, &View::empty()),
        Val::int(0),
        "observers without k must not learn the branch was taken"
    );
}

#[test]
fn f_row_builds_single_row_table() {
    let v = eval_ok("(row \"Alice\" \"Smith\")");
    let rows = project_rows(&v, &View::empty());
    assert_eq!(rows, vec![vec!["Alice".to_owned(), "Smith".to_owned()]]);
}

#[test]
fn faceted_row_becomes_two_guarded_rows() {
    // ⟨k ? row "Alice" "Smith" : row "Bob" "Jones"⟩ — the §4.2 example.
    let v = eval_ok("(label k (facet k (row \"Alice\" \"Smith\") (row \"Bob\" \"Jones\")))");
    let k = Label::from_index(0);
    let t = v.as_table().unwrap();
    assert_eq!(t.len(), 2, "stored as two guarded rows, not two tables");
    assert_eq!(
        project_rows(&v, &View::from_labels([k])),
        vec![vec!["Alice".to_owned(), "Smith".to_owned()]]
    );
    assert_eq!(
        project_rows(&v, &View::empty()),
        vec![vec!["Bob".to_owned(), "Jones".to_owned()]]
    );
}

#[test]
fn faceted_field_inside_row_distributes() {
    let v = eval_ok("(label k (row (facet k \"secret\" \"public\") \"x\"))");
    let k = Label::from_index(0);
    assert_eq!(
        project_rows(&v, &View::from_labels([k])),
        vec![vec!["secret".to_owned(), "x".to_owned()]]
    );
    assert_eq!(
        project_rows(&v, &View::empty()),
        vec![vec!["public".to_owned(), "x".to_owned()]]
    );
}

#[test]
fn f_select_filters_by_field_equality() {
    let v = eval_ok("(select 0 1 (union (row \"a\" \"a\") (row \"a\" \"b\")))");
    assert_eq!(
        project_rows(&v, &View::empty()),
        vec![vec!["a".to_owned(), "a".to_owned()]]
    );
}

#[test]
fn select_on_faceted_location_guards_result() {
    // The paper's filter query (§2.2): only viewers who can see the
    // location obtain the matching event.
    let v = eval_ok(
        "(label k (select 0 1
            (join (facet k (row \"Schloss Dagstuhl\") (row \"Undisclosed\"))
                  (row \"Schloss Dagstuhl\"))))",
    );
    let k = Label::from_index(0);
    assert_eq!(project_rows(&v, &View::from_labels([k])).len(), 1);
    assert_eq!(project_rows(&v, &View::empty()).len(), 0);
}

#[test]
fn f_project_reorders_columns() {
    let v = eval_ok("(project (1 0) (row \"a\" \"b\"))");
    assert_eq!(
        project_rows(&v, &View::empty()),
        vec![vec!["b".to_owned(), "a".to_owned()]]
    );
}

#[test]
fn f_join_unions_guards() {
    let v = eval_ok(
        "(label k (label l
            (join (facet k (row \"x\") (row \"y\"))
                  (facet l (row \"1\") (row \"2\")))))",
    );
    let (k, l) = (Label::from_index(0), Label::from_index(1));
    assert_eq!(
        project_rows(&v, &View::from_labels([k, l])),
        vec![vec!["x".to_owned(), "1".to_owned()]]
    );
    assert_eq!(
        project_rows(&v, &View::from_labels([k])),
        vec![vec!["x".to_owned(), "2".to_owned()]]
    );
    assert_eq!(
        project_rows(&v, &View::empty()),
        vec![vec!["y".to_owned(), "2".to_owned()]]
    );
}

#[test]
fn f_union_concatenates() {
    let v = eval_ok("(union (row \"a\") (row \"b\"))");
    assert_eq!(project_rows(&v, &View::empty()).len(), 2);
}

#[test]
fn f_fold_counts_rows_per_view() {
    // Count rows of a table with one public and one k-guarded row.
    let v = eval_ok(
        "(label k (fold (lam r (lam acc (+ acc 1))) 0
            (union (row \"pub\") (facet k (row \"secret\") (union (row \"x\") (row \"y\"))))))",
    );
    let k = Label::from_index(0);
    assert_eq!(project_val(&v, &View::from_labels([k])), Val::int(2));
    assert_eq!(project_val(&v, &View::empty()), Val::int(3));
}

#[test]
fn f_fold_empty_returns_accumulator() {
    let v = eval_ok("(fold (lam r (lam acc (+ acc 1))) 7 (select 0 1 (row \"a\" \"b\")))");
    assert_eq!(project_val(&v, &View::empty()), Val::int(7));
}

#[test]
fn mixing_table_and_scalar_in_facet_is_stuck() {
    let e = parse_expr("(label k (facet k (row \"a\") 3))").unwrap();
    assert_eq!(Interp::new().eval(&e), Err(EvalError::MixedFacet));
}

#[test]
fn applying_non_function_is_stuck() {
    assert!(matches!(eval("(app 3 4)"), Err(EvalError::NotAFunction(_))));
}

#[test]
fn non_boolean_condition_is_stuck() {
    assert!(matches!(eval("(if 3 1 2)"), Err(EvalError::NotABool(_))));
}

#[test]
fn row_field_must_be_string() {
    assert!(matches!(
        eval("(row 3)"),
        Err(EvalError::RowFieldNotString(_))
    ));
}

#[test]
fn select_out_of_bounds_column() {
    assert!(matches!(
        eval("(select 0 5 (row \"a\"))"),
        Err(EvalError::ColumnOutOfBounds { .. })
    ));
}

#[test]
fn print_respects_policies() {
    let program = parse_statement(
        "(letstmt secret
            (label k (let a (restrict k (lam v (== v (file boss)))) k))
            (seq
              (print (file boss) (facet secret 1 0))
              (print (file intern) (facet secret 1 0))))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out[0].channel, "boss");
    assert_eq!(out[0].rendered, "1");
    assert_eq!(out[1].channel, "intern");
    assert_eq!(out[1].rendered, "0");
}

#[test]
fn print_unrestricted_label_shows_secret() {
    let program =
        parse_statement("(letstmt k (label k k) (print (file anyone) (facet k \"hi\" \"lo\")))")
            .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(
        out[0].rendered, "hi",
        "no policy means show (maximize true)"
    );
}

#[test]
fn print_policy_depending_on_state_at_output_time() {
    // Policy consults a reference; value written *after* restrict but
    // *before* print determines the outcome (§2.1.2: "the state of the
    // system at the time of output").
    let program = parse_statement(
        "(letstmt cell (ref false)
           (letstmt secret
             (label k (let a (restrict k (lam v (deref cell))) k))
             (letstmt flip (assign cell true)
               (print (file u) (facet secret 1 0)))))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out[0].rendered, "1");
}

#[test]
fn print_circular_policy_prefers_showing() {
    // Policy for k: the *faceted* check ⟨k ? true : false⟩ — i.e. "you
    // may see k only if you see k" (the guest-list circularity, §2.3).
    // Both all-true and all-false satisfy it; Jacqueline shows.
    let program = parse_statement(
        "(letstmt secret
           (label k (let a (restrict k (lam v (facet k true false))) k))
           (print (file u) (facet secret \"shown\" \"hidden\")))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out[0].rendered, "shown");
}

#[test]
fn print_circular_policy_forced_hiding() {
    // Policy for k: ⟨k ? false : true⟩ — showing k violates its own
    // policy, so the only consistent outcome is hiding.
    let program = parse_statement(
        "(letstmt secret
           (label k (let a (restrict k (lam v (facet k false true))) k))
           (print (file u) (facet secret \"shown\" \"hidden\")))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out[0].rendered, "hidden");
}

#[test]
fn print_restrict_conjoins_policies() {
    // Two restricts: the second denies, so the conjunction denies.
    let program = parse_statement(
        "(letstmt secret
           (label k (let a (restrict k (lam v true))
                    (let b (restrict k (lam v false)) k)))
           (print (file u) (facet secret \"shown\" \"hidden\")))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out[0].rendered, "hidden");
}

#[test]
fn print_faceted_channel_resolves_consistently() {
    // The channel itself is faceted; the assignment determines both
    // where and what is printed.
    let program = parse_statement(
        "(letstmt secret
           (label k (let a (restrict k (lam v false)) k))
           (print (facet secret (file high) (file low)) (facet secret 1 0)))",
    )
    .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out[0].channel, "low");
    assert_eq!(out[0].rendered, "0");
}

#[test]
fn early_pruning_preserves_view_of_speculated_viewer() {
    let src = "(label k (union (facet k (row \"secret\") (row \"public\")) (row \"both\")))";
    let e = parse_expr(src).unwrap();

    let mut plain = Interp::new();
    let v_plain = plain.eval(&e).unwrap();

    let k = Label::from_index(0);
    let spec = Branches::new().with(Branch::pos(k));
    let mut pruned = Interp::with_pruning(spec);
    let v_pruned = pruned.eval(&e).unwrap();

    // The speculated viewer (sees k) observes the same rows...
    let view = View::from_labels([k]);
    assert_eq!(
        project_rows(&v_plain, &view),
        project_rows(&v_pruned, &view)
    );
    // ...and the pruned table physically stores fewer rows.
    assert!(v_pruned.as_table().unwrap().len() < v_plain.as_table().unwrap().len());
}

#[test]
fn statements_sequence_and_bind() {
    let program =
        parse_statement("(letstmt x 21 (seq (print (file a) (+ x x)) (print (file b) x)))")
            .unwrap();
    let out = Interp::new().run(&program).unwrap();
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].rendered, "42");
    assert_eq!(out[1].rendered, "21");
}

#[test]
fn out_of_fuel_reported() {
    // Keep fuel small: each β-step is one nested interpreter frame,
    // so divergence depth is bounded by fuel. Run on a thread with an
    // explicit stack so the test is robust in debug builds.
    let handle = std::thread::Builder::new()
        .stack_size(32 * 1024 * 1024)
        .spawn(|| {
            // Ω = (λx. x x)(λx. x x) — built inside the thread because
            // the interpreter itself stays single-threaded (values are Send now).
            let omega = Expr::app(
                Expr::lam("x", Expr::app(Expr::var("x"), Expr::var("x"))),
                Expr::lam("x", Expr::app(Expr::var("x"), Expr::var("x"))),
            );
            let mut interp = Interp::new();
            interp.set_fuel(5_000);
            // Report just the outcome.
            interp.eval(&omega) == Err(EvalError::OutOfFuel)
        })
        .unwrap();
    assert!(
        handle.join().unwrap(),
        "divergent program must run out of fuel"
    );
}

#[test]
fn statement_let_shadowing() {
    let s = parse_statement("(letstmt x 1 (letstmt x 2 (print (file f) x)))").unwrap();
    let out = Interp::new().run(&s).unwrap();
    assert_eq!(out[0].rendered, "2");
    assert!(matches!(s, Statement::Let(..)));
}
