//! FORM errors.

use std::error::Error;
use std::fmt;

/// Result alias for FORM operations.
pub type FormResult<T> = Result<T, FormError>;

/// Errors raised by the faceted object-relational mapping.
#[derive(Clone, Debug, PartialEq)]
pub enum FormError {
    /// Underlying relational engine error.
    Db(microdb::DbError),
    /// A `jvars` cell could not be parsed back into a branch set.
    BadJvars(String),
    /// Two physical rows of one object are visible to the same view
    /// (the facet structure is ambiguous).
    FacetConflict {
        /// Logical object id.
        jid: i64,
    },
    /// The requested object does not exist.
    NoSuchObject {
        /// Table searched.
        table: String,
        /// Logical object id.
        jid: i64,
    },
    /// A faceted aggregate was asked of a non-integer column.
    NonNumericAggregate(String),
}

impl fmt::Display for FormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormError::Db(e) => write!(f, "database error: {e}"),
            FormError::BadJvars(s) => write!(f, "malformed jvars cell: {s:?}"),
            FormError::FacetConflict { jid } => {
                write!(f, "conflicting facet rows for jid {jid}")
            }
            FormError::NoSuchObject { table, jid } => {
                write!(f, "no object with jid {jid} in table {table}")
            }
            FormError::NonNumericAggregate(c) => {
                write!(f, "faceted aggregate over non-numeric column {c}")
            }
        }
    }
}

impl Error for FormError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FormError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<microdb::DbError> for FormError {
    fn from(e: microdb::DbError) -> FormError {
        FormError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FormError::from(microdb::DbError::NoSuchTable("t".into()));
        assert!(e.to_string().contains("t"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FormError::FacetConflict { jid: 3 }).is_none());
    }
}
