//! Faceted aggregation — computed in the runtime, not the database.
//!
//! §3.1.1: "the FORM cannot use existing relational implementations
//! for aggregation … these aggregates would combine values across
//! facets". Instead the runtime folds over the guarded rows, keeping
//! a *faceted* accumulator so each view receives the aggregate over
//! exactly the rows it can see.

use faceted::{Faceted, FacetedList};
use microdb::Value;

use crate::error::{FormError, FormResult};
use crate::object::GuardedRow;

/// Faceted row count: each view sees the number of rows visible to
/// it.
///
/// # Examples
///
/// ```
/// use faceted::{Branch, Branches, FacetedList, Label, View};
/// use form::faceted_count;
///
/// let k = Label::from_index(0);
/// let mut rows = FacetedList::new();
/// rows.push(Branches::new(), "public");
/// rows.push(Branches::new().with(Branch::pos(k)), "secret");
/// let count = faceted_count(&rows);
/// assert_eq!(*count.project(&View::from_labels([k])), 2);
/// assert_eq!(*count.project(&View::empty()), 1);
/// ```
#[must_use]
pub fn faceted_count<T>(rows: &FacetedList<T>) -> Faceted<i64> {
    let mut acc = Faceted::leaf(0i64);
    for (guard, _) in rows.iter() {
        if !guard.is_consistent() {
            continue;
        }
        let bumped = acc.map(&mut |n| n + 1);
        acc = Faceted::split_branches(guard, bumped, acc);
    }
    acc
}

/// Faceted sum over an integer column of guarded rows.
///
/// # Errors
///
/// [`FormError::NonNumericAggregate`] if a visible cell is neither an
/// integer nor NULL (NULLs are skipped, SQL-style).
pub fn faceted_sum(rows: &FacetedList<GuardedRow>, column: usize) -> FormResult<Faceted<i64>> {
    let mut acc = Faceted::leaf(0i64);
    for (guard, row) in rows.iter() {
        if !guard.is_consistent() {
            continue;
        }
        let cell = row.fields.get(column).cloned().unwrap_or(Value::Null);
        let add = match cell {
            Value::Int(i) => i,
            Value::Null => 0,
            other => return Err(FormError::NonNumericAggregate(other.to_string())),
        };
        let bumped = acc.map(&mut |n| n + add);
        acc = Faceted::split_branches(guard, bumped, acc);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faceted::{Branch, Branches, Label, View};

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    fn grow(guard: Branches, v: i64) -> (Branches, GuardedRow) {
        (
            guard.clone(),
            GuardedRow {
                jid: 1,
                guard,
                fields: vec![Value::Int(v)],
            },
        )
    }

    #[test]
    fn count_respects_views() {
        let rows: FacetedList<GuardedRow> = [
            grow(Branches::new(), 1),
            grow(Branches::new().with(Branch::pos(k(0))), 2),
            grow(Branches::new().with(Branch::neg(k(0))), 3),
        ]
        .into_iter()
        .collect();
        let c = faceted_count(&rows);
        assert_eq!(*c.project(&View::from_labels([k(0)])), 2);
        assert_eq!(*c.project(&View::empty()), 2);
    }

    #[test]
    fn sum_respects_views() {
        let rows: FacetedList<GuardedRow> = [
            grow(Branches::new(), 10),
            grow(Branches::new().with(Branch::pos(k(0))), 100),
        ]
        .into_iter()
        .collect();
        let s = faceted_sum(&rows, 0).unwrap();
        assert_eq!(*s.project(&View::from_labels([k(0)])), 110);
        assert_eq!(*s.project(&View::empty()), 10);
    }

    #[test]
    fn sum_rejects_strings() {
        let mut rows = FacetedList::new();
        rows.push(
            Branches::new(),
            GuardedRow {
                jid: 1,
                guard: Branches::new(),
                fields: vec![Value::from("x")],
            },
        );
        assert!(faceted_sum(&rows, 0).is_err());
    }

    #[test]
    fn contradictory_guards_do_not_count() {
        let bad = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(0))]);
        let rows: FacetedList<GuardedRow> = [grow(bad, 5)].into_iter().collect();
        let c = faceted_count(&rows);
        assert_eq!(*c.project(&View::empty()), 0);
        assert_eq!(*c.project(&View::from_labels([k(0)])), 0);
    }
}
