//! Debug-build table-access recording: which tables did this thread's
//! current request actually touch?
//!
//! Route footprints (`jacqueline::Footprint`) are declared by hand,
//! and a footprint that *under*-declares breaks request isolation
//! silently — the executor takes too few locks and a concurrent
//! reader can observe a torn multi-statement write. This module
//! closes that hazard in debug builds: every [`FormDb`] query notes
//! the table it reads and every write notes the table it mutates into
//! a thread-local set, the executor snapshots the set around each
//! controller call, and a touch outside the declared footprint
//! panics the request (loudly, in tests) instead of racing silently
//! in production.
//!
//! In release builds every function here compiles to a no-op, so the
//! hot path pays nothing.
//!
//! [`FormDb`]: crate::FormDb

#[cfg(debug_assertions)]
use std::cell::RefCell;
use std::collections::BTreeSet;

/// The tables one request actually touched, split by access kind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TouchedTables {
    /// Tables read by queries (`all`, `filter`, `get`, joins — and
    /// everything policies read at output time).
    pub reads: BTreeSet<String>,
    /// Tables mutated (`insert`, `save`, `delete`).
    pub writes: BTreeSet<String>,
}

#[cfg(debug_assertions)]
thread_local! {
    static ACTIVE: RefCell<Option<TouchedTables>> = const { RefCell::new(None) };
}

/// Starts recording table accesses on the calling thread, returning
/// any recording that was already in flight (recordings nest by
/// save/restore, so a controller that itself drives a nested dispatch
/// cannot corrupt the outer request's set).
///
/// No-op (returns `None`) in release builds.
#[must_use]
pub fn begin_recording() -> Option<TouchedTables> {
    #[cfg(debug_assertions)]
    {
        ACTIVE.with(|a| a.borrow_mut().replace(TouchedTables::default()))
    }
    #[cfg(not(debug_assertions))]
    {
        None
    }
}

/// Stops recording on the calling thread, restoring `previous` (the
/// value [`begin_recording`] returned) and handing back what was
/// recorded since. Returns `None` in release builds and when no
/// recording was active.
pub fn end_recording(previous: Option<TouchedTables>) -> Option<TouchedTables> {
    #[cfg(debug_assertions)]
    {
        ACTIVE.with(|a| {
            let recorded = a.borrow_mut().take();
            *a.borrow_mut() = previous;
            recorded
        })
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = previous;
        None
    }
}

/// Notes a query against `table` (no-op unless a debug-build
/// recording is active on this thread).
#[inline]
pub fn note_read(table: &str) {
    #[cfg(debug_assertions)]
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            if !t.reads.contains(table) {
                t.reads.insert(table.to_owned());
            }
        }
    });
    #[cfg(not(debug_assertions))]
    let _ = table;
}

/// Notes a mutation of `table` (no-op unless a debug-build recording
/// is active on this thread).
#[inline]
pub fn note_write(table: &str) {
    #[cfg(debug_assertions)]
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            if !t.writes.contains(table) {
                t.writes.insert(table.to_owned());
            }
        }
    });
    #[cfg(not(debug_assertions))]
    let _ = table;
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    #[test]
    fn recording_captures_reads_and_writes() {
        let prev = begin_recording();
        note_read("a");
        note_read("a");
        note_write("b");
        let touched = end_recording(prev).unwrap();
        assert_eq!(touched.reads.iter().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(touched.writes.iter().collect::<Vec<_>>(), vec!["b"]);
        // Recording is off again: notes go nowhere.
        note_read("c");
        let prev = begin_recording();
        let empty = end_recording(prev).unwrap();
        assert!(empty.reads.is_empty() && empty.writes.is_empty());
    }

    #[test]
    fn recordings_nest_by_save_restore() {
        let outer = begin_recording();
        note_read("outer_table");
        let inner = begin_recording();
        note_read("inner_table");
        let inner_touched = end_recording(inner).unwrap();
        assert!(inner_touched.reads.contains("inner_table"));
        assert!(!inner_touched.reads.contains("outer_table"));
        note_read("outer_again");
        let outer_touched = end_recording(outer).unwrap();
        assert!(outer_touched.reads.contains("outer_table"));
        assert!(outer_touched.reads.contains("outer_again"));
        assert!(!outer_touched.reads.contains("inner_table"));
    }

    #[test]
    fn notes_without_recording_are_ignored() {
        note_read("nope");
        note_write("nope");
        let prev = begin_recording();
        let t = end_recording(prev).unwrap();
        assert!(t.reads.is_empty() && t.writes.is_empty());
    }
}
