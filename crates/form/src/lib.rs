//! `form` — the Faceted Object-Relational Mapping (FORM).
//!
//! The central implementation idea of *Precise, Dynamic Information
//! Flow for Database-Backed Applications* (Yang et al., PLDI 2016,
//! §3): faceted values can be stored in an **unmodified** relational
//! database by adding two meta-data columns — `jid`, the logical
//! object id, and `jvars`, an encoding of which facet a physical row
//! belongs to (`"k1=True,k2=False"`). Standard SQL then *just works*:
//!
//! * `WHERE` filters physical rows, and because secret and public
//!   facets are separate rows, the matches come back correctly
//!   guarded;
//! * `JOIN`s run on `jid` and union the `jvars` of both sides
//!   (Table 2);
//! * `ORDER BY` sorts facet rows independently, so each view receives
//!   its own correctly sorted list;
//! * only aggregation must stay in the runtime ([`faceted_count`],
//!   [`faceted_sum`]), since SQL aggregates would mix facets.
//!
//! Writes under a path condition implement the guarded updates of
//! §2.2 (`⟨⟨pc ? new : old⟩⟩`), and [`FormDb::set_pruning`] implements
//! the Early Pruning optimization of §3.2.
//!
//! Unmarshalling — the dominant FORM cost in the paper's Tables 3–4 —
//! is amortized by a per-table **decode cache** keyed on the storage
//! engine's write-generation stamps; see the [`FormDb`] type-level
//! docs for the invalidation contract.
//!
//! See the crate-level example on [`FormDb`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod db;
mod error;
mod meta;
mod object;
pub mod persist;
pub mod touched;

pub use aggregate::{faceted_count, faceted_sum};
pub use db::{DecodeCacheStats, FormDb};
pub use error::{FormError, FormResult};
pub use meta::{encode_jvars, parse_jvars, JID, JVARS};
pub use object::{flatten_object, object_field, rebuild_object, FacetedObject, GuardedRow};
pub use persist::FormMeta;
