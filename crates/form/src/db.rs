//! The faceted database handle: meta-data management, marshalling,
//! faceted queries, guarded writes, Early Pruning.

use faceted::{Branches, FacetedList, Label, LabelRegistry};
use microdb::{
    ColumnDef, ColumnType, Database, Operand, Predicate, Query, Row, Schema, SortOrder, Value,
};

use crate::error::{FormError, FormResult};
use crate::meta::{encode_jvars, parse_jvars, JID, JVARS};
use crate::object::{flatten_object, rebuild_object, FacetedObject, GuardedRow};

/// A faceted database: a relational engine driven purely through
/// meta-data columns, per §3 of the paper.
///
/// Every logical table gets two extra columns: `jid` (logical object
/// id, also the target of faceted foreign keys) and `jvars` (the
/// encoded branch set saying which views see the row). All
/// marshalling and unmarshalling happens here; the underlying
/// [`microdb::Database`] stays completely facet-unaware.
///
/// # Concurrency
///
/// `FormDb` is `Send + Sync`: every query method takes `&self` (the
/// engine's shared-access plan never mutates, and writers rebuild
/// indexes eagerly), so the concurrent request executor can serve
/// many read requests against one `FormDb` behind a reader-writer
/// lock while writes take the exclusive side. Per-request Early
/// Pruning should use the `*_with` query variants, which take the
/// viewer constraint as an argument instead of mutating the shared
/// [`FormDb::set_pruning`] state.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), form::FormError> {
/// use faceted::Faceted;
/// use form::FormDb;
/// use microdb::{ColumnDef, ColumnType, Value};
///
/// let mut db = FormDb::new();
/// db.create_table("event", vec![
///     ColumnDef::new("name", ColumnType::Str),
/// ])?;
///
/// let k = db.fresh_label("event_name");
/// let name = Faceted::split(
///     k,
///     Faceted::leaf(Some(vec![Value::from("Carol's surprise party")])),
///     Faceted::leaf(Some(vec![Value::from("Private event")])),
/// );
/// let jid = db.insert("event", &name)?;
///
/// // Two physical rows share the jid (Table 1 of the paper).
/// assert_eq!(db.physical_rows("event")?, 2);
/// let obj = db.get("event", jid)?;
/// assert_eq!(obj.project(&faceted::View::from_labels([k])).as_ref().unwrap()[0],
///            Value::from("Carol's surprise party"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct FormDb {
    db: Database,
    labels: LabelRegistry,
    /// Per-table next logical id (Django primary keys are per-model).
    next_jid: std::collections::BTreeMap<String, i64>,
    /// When set, unmarshalling reconstructs only facets consistent
    /// with this viewer constraint (Early Pruning, §3.2).
    pruning: Option<Branches>,
}

impl FormDb {
    /// An empty faceted database.
    #[must_use]
    pub fn new() -> FormDb {
        FormDb::default()
    }

    /// Direct access to the underlying relational engine (for
    /// baselines and diagnostics; application code should stay on the
    /// faceted API).
    pub fn raw(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Shared access to the underlying relational engine.
    #[must_use]
    pub fn raw_ref(&self) -> &Database {
        &self.db
    }

    /// Allocates a fresh policy label.
    pub fn fresh_label(&mut self, name: &str) -> Label {
        self.labels.fresh(name)
    }

    /// The label registry.
    #[must_use]
    pub fn labels(&self) -> &LabelRegistry {
        &self.labels
    }

    /// Enables Early Pruning for a known viewer constraint; queries
    /// will reconstruct only the consistent facets.
    pub fn set_pruning(&mut self, constraint: Option<Branches>) {
        self.pruning = constraint;
    }

    /// The active pruning constraint, if any.
    #[must_use]
    pub fn pruning(&self) -> Option<&Branches> {
        self.pruning.as_ref()
    }

    /// Creates a logical table: the user columns plus `jid`/`jvars`
    /// meta columns, with a hash index on `jid`.
    ///
    /// # Errors
    ///
    /// Propagates [`microdb::DbError`] (e.g. duplicate table).
    pub fn create_table(&mut self, name: &str, user_columns: Vec<ColumnDef>) -> FormResult<()> {
        let mut cols = user_columns;
        cols.push(ColumnDef::new(JID, ColumnType::Int));
        cols.push(ColumnDef::new(JVARS, ColumnType::Str));
        self.db.create_table(name, Schema::new(cols))?;
        self.db.table_mut(name)?.create_index(JID)?;
        Ok(())
    }

    /// Declares a hash index on a user column (Django indexes foreign
    /// keys by default; the FORM queries are plain SQL, so they
    /// benefit like any other query).
    ///
    /// # Errors
    ///
    /// Propagates table/column lookup errors.
    pub fn create_index(&mut self, table: &str, column: &str) -> FormResult<()> {
        self.db.table_mut(table)?.create_index(column)?;
        Ok(())
    }

    /// Number of *physical* rows in a table (facets included) — the
    /// space-overhead metric of §3.3.
    ///
    /// # Errors
    ///
    /// Propagates table-lookup errors.
    pub fn physical_rows(&self, table: &str) -> FormResult<usize> {
        Ok(self.db.table(table)?.len())
    }

    /// Number of user columns of a logical table.
    fn user_width(&self, table: &str) -> FormResult<usize> {
        Ok(self.db.table(table)?.schema().len() - 2)
    }

    /// Reserves the next logical object id of a table without writing
    /// anything — used when the object's own `jid` must be visible to
    /// its policies before insertion.
    pub fn reserve_jid(&mut self, table: &str) -> i64 {
        let next = self.next_jid.entry(table.to_owned()).or_insert(1);
        let jid = *next;
        *next += 1;
        jid
    }

    /// Inserts a faceted object, returning its fresh `jid`. Each
    /// reachable facet leaf becomes one physical row with the guard
    /// encoded in `jvars`.
    ///
    /// # Errors
    ///
    /// Schema-validation errors from the engine.
    pub fn insert(&mut self, table: &str, object: &FacetedObject) -> FormResult<i64> {
        let jid = self.reserve_jid(table);
        self.insert_with_jid(table, jid, object)?;
        Ok(jid)
    }

    /// Inserts a faceted object under a pre-reserved `jid`.
    ///
    /// # Errors
    ///
    /// Schema-validation errors from the engine.
    pub fn insert_with_jid(
        &mut self,
        table: &str,
        jid: i64,
        object: &FacetedObject,
    ) -> FormResult<()> {
        self.write_rows(table, jid, object)
    }

    fn write_rows(&mut self, table: &str, jid: i64, object: &FacetedObject) -> FormResult<()> {
        for (guard, fields) in flatten_object(object) {
            let mut row: Row = fields;
            row.push(Value::Int(jid));
            row.push(Value::Str(encode_jvars(&guard)));
            self.db.insert(table, row)?;
        }
        // Writers pay for index maintenance so the shared-access query
        // plan (`&self`) always finds fresh indexes.
        self.db.table_mut(table)?.refresh_indexes();
        Ok(())
    }

    /// Parses one physical row into a [`GuardedRow`].
    fn decode_row(&self, row: &Row, width: usize) -> FormResult<GuardedRow> {
        let jid = row[width]
            .as_int()
            .ok_or_else(|| FormError::BadJvars("jid is not an integer".into()))?;
        let jvars = row[width + 1]
            .as_str()
            .ok_or_else(|| FormError::BadJvars("jvars is not a string".into()))?;
        Ok(GuardedRow {
            jid,
            guard: parse_jvars(jvars)?,
            fields: row[..width].to_vec(),
        })
    }

    fn apply_pruning(rows: Vec<GuardedRow>, constraint: Option<&Branches>) -> Vec<GuardedRow> {
        match constraint {
            None => rows,
            Some(constraint) => rows
                .into_iter()
                .filter(|r| r.guard.consistent_with(constraint))
                .collect(),
        }
    }

    /// All guarded rows of a table — the faceted `objects.all()` —
    /// pruned by the database-level constraint, if one is set.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn all(&self, table: &str) -> FormResult<FacetedList<GuardedRow>> {
        self.all_with(table, self.pruning.as_ref())
    }

    /// [`FormDb::all`] with an explicit Early-Pruning constraint,
    /// letting each concurrent request keep its pruning state
    /// thread-local instead of mutating the shared handle.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn all_with(
        &self,
        table: &str,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        let width = self.user_width(table)?;
        let rows = Query::from(table).execute_ref(&self.db)?;
        self.collect_guarded(rows, width, prune)
    }

    /// Faceted `filter`: issues the WHERE query directly against the
    /// physical table — because each facet lives in its own row,
    /// standard relational filtering is already flow-correct (§3.1.1).
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn filter(&self, table: &str, predicate: Predicate) -> FormResult<FacetedList<GuardedRow>> {
        self.filter_with(table, predicate, self.pruning.as_ref())
    }

    /// [`FormDb::filter`] with an explicit Early-Pruning constraint.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn filter_with(
        &self,
        table: &str,
        predicate: Predicate,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        let width = self.user_width(table)?;
        let rows = Query::from(table).filter(predicate).execute_ref(&self.db)?;
        self.collect_guarded(rows, width, prune)
    }

    /// Faceted equality filter on one column.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn filter_eq(
        &self,
        table: &str,
        column: &str,
        value: Value,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.filter(
            table,
            Predicate::eq(Operand::col(column), Operand::Lit(value)),
        )
    }

    /// Faceted `ORDER BY`: relies on SQL sorting of physical rows —
    /// secret and public facets sort independently because they are
    /// separate rows (§3.1.1).
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn order_by(
        &self,
        table: &str,
        column: &str,
        order: SortOrder,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.order_by_with(table, column, order, self.pruning.as_ref())
    }

    /// [`FormDb::order_by`] with an explicit Early-Pruning constraint.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn order_by_with(
        &self,
        table: &str,
        column: &str,
        order: SortOrder,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        let width = self.user_width(table)?;
        let rows = Query::from(table)
            .order_by(column, order)
            .execute_ref(&self.db)?;
        self.collect_guarded(rows, width, prune)
    }

    /// Faceted join: `left JOIN right ON left.fk = right.jid`,
    /// SELECTing both `jvars` columns and unioning the guards — the
    /// translated query of Table 2. Pairs whose combined guard is
    /// contradictory are dropped (no view could see them).
    ///
    /// Returns `(left_row, right_row)` pairs with the combined guard.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn join_on_fk(
        &self,
        left: &str,
        fk_column: &str,
        right: &str,
    ) -> FormResult<FacetedList<(GuardedRow, GuardedRow)>> {
        self.join_on_fk_with(left, fk_column, right, self.pruning.as_ref())
    }

    /// [`FormDb::join_on_fk`] with an explicit Early-Pruning
    /// constraint.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn join_on_fk_with(
        &self,
        left: &str,
        fk_column: &str,
        right: &str,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<(GuardedRow, GuardedRow)>> {
        let lwidth = self.user_width(left)?;
        let rwidth = self.user_width(right)?;
        let rows = Query::from(left)
            .join(right, fk_column, JID)
            .execute_ref(&self.db)?;
        let mut out = FacetedList::new();
        let lphys = lwidth + 2;
        for row in rows {
            let l = self.decode_row(&row[..lphys].to_vec(), lwidth)?;
            let r = self.decode_row(&row[lphys..].to_vec(), rwidth)?;
            let guard = l.guard.union(&r.guard);
            if !guard.is_consistent() {
                continue;
            }
            let (mut l, mut r) = (l, r);
            l.guard = guard.clone();
            r.guard = guard.clone();
            out.push(guard, (l, r));
        }
        if let Some(constraint) = prune {
            out = out.prune(constraint);
        }
        Ok(out)
    }

    fn collect_guarded(
        &self,
        rows: Vec<Row>,
        width: usize,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        let mut decoded = Vec::with_capacity(rows.len());
        for r in &rows {
            decoded.push(self.decode_row(r, width)?);
        }
        let decoded = FormDb::apply_pruning(decoded, prune);
        Ok(decoded.into_iter().map(|g| (g.guard.clone(), g)).collect())
    }

    /// Reconstructs one logical object from its physical rows.
    ///
    /// # Errors
    ///
    /// [`FormError::NoSuchObject`] if no row carries this `jid`;
    /// [`FormError::FacetConflict`] on ambiguous facets.
    pub fn get(&self, table: &str, jid: i64) -> FormResult<FacetedObject> {
        self.get_with(table, jid, self.pruning.as_ref())
    }

    /// [`FormDb::get`] with an explicit Early-Pruning constraint.
    ///
    /// # Errors
    ///
    /// Same as [`FormDb::get`].
    pub fn get_with(
        &self,
        table: &str,
        jid: i64,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedObject> {
        let width = self.user_width(table)?;
        let rows = Query::from(table)
            .filter(Predicate::eq(Operand::col(JID), Operand::lit(jid)))
            .execute_ref(&self.db)?;
        if rows.is_empty() {
            return Err(FormError::NoSuchObject {
                table: table.to_owned(),
                jid,
            });
        }
        let mut guarded = Vec::with_capacity(rows.len());
        for r in &rows {
            let g = self.decode_row(r, width)?;
            guarded.push((g.guard, g.fields));
        }
        let guarded = match prune {
            None => guarded,
            Some(c) => guarded
                .into_iter()
                .filter(|(g, _)| g.consistent_with(c))
                .collect(),
        };
        rebuild_object(jid, &guarded)
    }

    /// Saves an object under a path condition: the paper's guarded
    /// write (§2.2/§3.1.2). The stored object becomes
    /// `⟨⟨pc ? new : current⟩⟩`; with an empty `pc` this is a plain
    /// overwrite.
    ///
    /// # Errors
    ///
    /// Lookup/decoding errors; a missing object is treated as absent
    /// (`None` facets) rather than an error, so guarded creation
    /// works.
    pub fn save(
        &mut self,
        table: &str,
        jid: i64,
        new: &FacetedObject,
        pc: &Branches,
    ) -> FormResult<()> {
        let current = match self.get(table, jid) {
            Ok(cur) => cur,
            Err(FormError::NoSuchObject { .. }) => faceted::Faceted::leaf(None),
            Err(e) => return Err(e),
        };
        let merged = faceted::Faceted::split_branches(pc, new.clone(), current);
        self.db
            .delete(table, &Predicate::eq(Operand::col(JID), Operand::lit(jid)))?;
        self.write_rows(table, jid, &merged)
    }

    /// Deletes an object under a path condition: views satisfying
    /// `pc` stop seeing it, others keep it (implemented as a guarded
    /// save of the absent object).
    ///
    /// # Errors
    ///
    /// Same as [`FormDb::save`].
    pub fn delete(&mut self, table: &str, jid: i64, pc: &Branches) -> FormResult<()> {
        self.save(table, jid, &faceted::Faceted::leaf(None), pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faceted::{Branch, Faceted, View};

    fn event_db() -> (FormDb, Label, i64) {
        let mut db = FormDb::new();
        db.create_table(
            "event",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("location", ColumnType::Str),
            ],
        )
        .unwrap();
        let k = db.fresh_label("event_policy");
        let obj = Faceted::split(
            k,
            Faceted::leaf(Some(vec![
                Value::from("Carol's surprise party"),
                Value::from("Schloss Dagstuhl"),
            ])),
            Faceted::leaf(Some(vec![
                Value::from("Private event"),
                Value::from("Undisclosed location"),
            ])),
        );
        let jid = db.insert("event", &obj).unwrap();
        (db, k, jid)
    }

    #[test]
    fn insert_stores_one_row_per_facet() {
        let (db, _, _) = event_db();
        assert_eq!(db.physical_rows("event").unwrap(), 2);
    }

    #[test]
    fn get_round_trips_facets() {
        let (db, k, jid) = event_db();
        let obj = db.get("event", jid).unwrap();
        let secret = obj.project(&View::from_labels([k])).clone().unwrap();
        let public = obj.project(&View::empty()).clone().unwrap();
        assert_eq!(secret[0], Value::from("Carol's surprise party"));
        assert_eq!(public[1], Value::from("Undisclosed location"));
    }

    #[test]
    fn filter_tracks_sensitive_values() {
        // The §3.1.1 query: only the secret facet matches; the result
        // is guarded so only authorized viewers see the event.
        let (db, k, _) = event_db();
        let result = db
            .filter_eq("event", "location", Value::from("Schloss Dagstuhl"))
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.project(&View::from_labels([k])).len(), 1);
        assert!(result.project(&View::empty()).is_empty());
    }

    #[test]
    fn order_by_sorts_facets_independently() {
        // §3.1.1: ⟨a?"Charlie":"***"⟩, ⟨b?"Bob":"***"⟩, ⟨c?"Alice":"***"⟩
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("f", ColumnType::Str)])
            .unwrap();
        let (a, b, c) = (
            db.fresh_label("a"),
            db.fresh_label("b"),
            db.fresh_label("c"),
        );
        for (l, name) in [(a, "Charlie"), (b, "Bob"), (c, "Alice")] {
            let obj = Faceted::split(
                l,
                Faceted::leaf(Some(vec![Value::from(name)])),
                Faceted::leaf(Some(vec![Value::from("***")])),
            );
            db.insert("t", &obj).unwrap();
        }
        let sorted = db.order_by("t", "f", SortOrder::Asc).unwrap();
        // View {a, ¬b, c}: sees "Charlie", "***", "Alice" — sorted
        // as ["***", "Alice", "Charlie"] (the paper's example).
        let view = View::from_labels([a, c]);
        let names: Vec<String> = sorted
            .project(&view)
            .into_iter()
            .map(|g| g.fields[0].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["***", "Alice", "Charlie"]);
    }

    #[test]
    fn join_unions_jvars_from_both_tables() {
        let (mut db, k, jid) = event_db();
        db.create_table(
            "guest",
            vec![
                ColumnDef::new("event", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        )
        .unwrap();
        let g = db.fresh_label("guest_policy");
        let guest = Faceted::split(
            g,
            Faceted::leaf(Some(vec![Value::Int(jid), Value::from("alice")])),
            Faceted::leaf(None),
        );
        db.insert("guest", &guest).unwrap();

        let joined = db.join_on_fk("guest", "event", "event").unwrap();
        // Pairs: (guest-secret × event-secret), (guest-secret × event-public).
        assert_eq!(joined.len(), 2);
        let both = View::from_labels([k, g]);
        let seen = joined.project(&both);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1.fields[0], Value::from("Carol's surprise party"));
        // A viewer with only g sees the public event side.
        let only_g = View::from_labels([g]);
        let seen = joined.project(&only_g);
        assert_eq!(seen[0].1.fields[0], Value::from("Private event"));
        // A viewer without g sees no joined row at all.
        assert!(joined.project(&View::from_labels([k])).is_empty());
    }

    #[test]
    fn save_without_pc_overwrites() {
        let (mut db, _, jid) = event_db();
        let new = Faceted::leaf(Some(vec![Value::from("X"), Value::from("Y")]));
        db.save("event", jid, &new, &Branches::new()).unwrap();
        assert_eq!(db.physical_rows("event").unwrap(), 1);
        let obj = db.get("event", jid).unwrap();
        assert_eq!(obj, new);
    }

    #[test]
    fn save_under_pc_keeps_old_value_for_other_views() {
        // The Dagstuhl-update example of §2.2: a write inside a branch
        // on sensitive data becomes ⟨k ? new : old⟩.
        let (mut db, k, jid) = event_db();
        let new = Faceted::leaf(Some(vec![
            Value::from("Carol's surprise party"),
            Value::from("Dagstuhl event!"),
        ]));
        let pc = Branches::new().with(Branch::pos(k));
        db.save("event", jid, &new, &pc).unwrap();
        let obj = db.get("event", jid).unwrap();
        assert_eq!(
            obj.project(&View::from_labels([k])).clone().unwrap()[1],
            Value::from("Dagstuhl event!")
        );
        assert_eq!(
            obj.project(&View::empty()).clone().unwrap()[1],
            Value::from("Undisclosed location"),
            "unauthorized views keep the old facet"
        );
    }

    #[test]
    fn guarded_delete_hides_for_matching_views() {
        let (mut db, k, jid) = event_db();
        let pc = Branches::new().with(Branch::pos(k));
        db.delete("event", jid, &pc).unwrap();
        let obj = db.get("event", jid).unwrap();
        assert_eq!(obj.project(&View::from_labels([k])), &None);
        assert!(obj.project(&View::empty()).is_some());
    }

    #[test]
    fn full_delete_removes_object() {
        let (mut db, _, jid) = event_db();
        db.delete("event", jid, &Branches::new()).unwrap();
        assert!(matches!(
            db.get("event", jid),
            Err(FormError::NoSuchObject { .. })
        ));
        assert_eq!(db.physical_rows("event").unwrap(), 0);
    }

    #[test]
    fn form_db_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormDb>();
        assert_send_sync::<FacetedObject>();
        assert_send_sync::<FacetedList<crate::GuardedRow>>();
    }

    #[test]
    fn explicit_constraint_matches_db_level_pruning() {
        let (mut db, k, jid) = event_db();
        let constraint = Branches::new().with(Branch::pos(k));
        let explicit_all = db.all_with("event", Some(&constraint)).unwrap();
        let explicit_get = db.get_with("event", jid, Some(&constraint)).unwrap();
        db.set_pruning(Some(constraint));
        assert_eq!(db.all("event").unwrap(), explicit_all);
        assert_eq!(db.get("event", jid).unwrap(), explicit_get);
        assert_eq!(explicit_all.len(), 1);
    }

    #[test]
    fn early_pruning_reconstructs_fewer_facets() {
        let (mut db, k, _) = event_db();
        db.set_pruning(Some(Branches::new().with(Branch::pos(k))));
        let all = db.all("event").unwrap();
        assert_eq!(all.len(), 1, "only the consistent facet is unmarshalled");
        assert_eq!(
            all.project(&View::from_labels([k]))[0].fields[0],
            Value::from("Carol's surprise party")
        );
    }

    #[test]
    fn pruned_get_matches_unpruned_projection() {
        let (mut db, k, jid) = event_db();
        let full = db.get("event", jid).unwrap();
        db.set_pruning(Some(Branches::new().with(Branch::pos(k))));
        let pruned = db.get("event", jid).unwrap();
        let view = View::from_labels([k]);
        assert_eq!(pruned.project(&view), full.project(&view));
    }

    #[test]
    fn missing_object_is_reported() {
        let (db, _, _) = event_db();
        assert!(matches!(
            db.get("event", 999),
            Err(FormError::NoSuchObject { .. })
        ));
    }

    #[test]
    fn malformed_jvars_detected() {
        let (mut db, _, _) = event_db();
        db.raw()
            .insert(
                "event",
                vec![
                    Value::from("x"),
                    Value::from("y"),
                    Value::Int(50),
                    Value::from("garbage-jvars"),
                ],
            )
            .unwrap();
        assert!(matches!(db.get("event", 50), Err(FormError::BadJvars(_))));
    }
}
