//! The faceted database handle: meta-data management, marshalling,
//! faceted queries, guarded writes, Early Pruning, and the
//! generation-stamped decode cache.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

use faceted::{Branches, FacetedList, Label, LabelRegistry};
use microdb::{
    ColumnDef, ColumnType, Database, Operand, Predicate, Query, Row, RowDelta, Schema, SortOrder,
    Statement, Table, Value,
};

use crate::error::{FormError, FormResult};
use crate::meta::{encode_jvars, parse_jvars, JID, JVARS};
use crate::object::{flatten_object, rebuild_object, FacetedObject, GuardedRow};

/// Hit/miss counters of the decode cache (diagnostics; the ablation
/// tables report these alongside the timings).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Queries served from an already-decoded table snapshot.
    pub hits: u64,
    /// Queries that had to unmarshal (cold table or stale generation
    /// past the journal window).
    pub misses: u64,
    /// Stale slots repaired in place from the table's change journal
    /// (each avoided a full-table re-decode).
    pub delta_applies: u64,
}

/// One cached decoded table, valid exactly while the table's write
/// stamp still equals `generation`. Two independent layers:
///
/// * `rows` — the unmarshalled guarded rows of every physical row,
///   aligned with physical row order (populated by full-table reads;
///   `None` while only selective queries have run since the last
///   write);
/// * `objects` — facet DAGs of objects already rebuilt at this
///   generation ([`FormDb::get`] memoizes per `jid`; facet DAGs are
///   hash-consed, so the cached clones are O(1)).
#[derive(Clone, Debug, Default)]
struct DecodedTable {
    generation: u64,
    rows: Option<FacetedList<GuardedRow>>,
    objects: HashMap<i64, FacetedObject>,
}

/// A faceted database: a relational engine driven purely through
/// meta-data columns, per §3 of the paper.
///
/// Every logical table gets two extra columns: `jid` (logical object
/// id, also the target of faceted foreign keys) and `jvars` (the
/// encoded branch set saying which views see the row). All
/// marshalling and unmarshalling happens here; the underlying
/// [`microdb::Database`] stays completely facet-unaware.
///
/// # The decode cache
///
/// The paper's own evaluation (§6, Tables 3–4) identifies
/// *unmarshalling* — re-parsing `jvars` strings into facet guards —
/// as the dominant cost of the FORM. `FormDb` therefore keeps a
/// per-table cache of decoded [`GuardedRow`]s, keyed on the table's
/// monotonic [`microdb::Table::generation`] stamp: every
/// `insert`/`update`/`delete` bumps the stamp, so a cached snapshot
/// is valid exactly until the next write *to that table* — writes to
/// other tables invalidate nothing. Queries (`all`, `filter`,
/// `order_by`, `get`, joins) plan against physical row indices and
/// reuse the decoded rows; Early-Pruning variants apply the viewer
/// constraint to the decoded rows, not to raw strings. Cache clones
/// are O(1) ([`FacetedList`] is copy-on-write), so a cache hit costs
/// no per-row work at all.
///
/// Invalidation is *delta-maintained*: a write bumps the stamp, but
/// the next query repairs the stale snapshot from the table's bounded
/// change journal ([`microdb::Table::deltas_since`]) — a single-row
/// insert appends one decoded row instead of re-decoding the whole
/// table; updates/deletes patch or evict only the touched rows and
/// object memos. When the journal window has slid past the snapshot,
/// the query falls back to a full re-decode, so correctness never
/// depends on journal retention. [`FormDb::set_decode_cache`]
/// switches the cache off and [`FormDb::set_delta_maintenance`]
/// switches just the repair path off for ablation measurements;
/// cached, uncached, and delta-maintained paths are byte-identical
/// (the differential suite pins this).
///
/// # Concurrency
///
/// `FormDb` is `Send + Sync`, and both queries *and row-level writes*
/// take `&self`: storage is sharded per table inside
/// [`microdb::Database`], label allocation and `jid` reservation use
/// internal locks, so concurrent requests touching different tables
/// proceed fully in parallel. Multi-statement isolation (a reader
/// must not observe half of a `save`) is coordinated above this layer
/// by the executor's footprint locks. Per-request Early Pruning
/// should use the `*_with` query variants, which take the viewer
/// constraint as an argument instead of mutating the shared
/// [`FormDb::set_pruning`] state.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), form::FormError> {
/// use faceted::Faceted;
/// use form::FormDb;
/// use microdb::{ColumnDef, ColumnType, Value};
///
/// let mut db = FormDb::new();
/// db.create_table("event", vec![
///     ColumnDef::new("name", ColumnType::Str),
/// ])?;
///
/// let k = db.fresh_label("event_name");
/// let name = Faceted::split(
///     k,
///     Faceted::leaf(Some(vec![Value::from("Carol's surprise party")])),
///     Faceted::leaf(Some(vec![Value::from("Private event")])),
/// );
/// let jid = db.insert("event", &name)?;
///
/// // Two physical rows share the jid (Table 1 of the paper).
/// assert_eq!(db.physical_rows("event")?, 2);
/// let obj = db.get("event", jid)?;
/// assert_eq!(obj.project(&faceted::View::from_labels([k])).as_ref().unwrap()[0],
///            Value::from("Carol's surprise party"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FormDb {
    db: Database,
    labels: RwLock<LabelRegistry>,
    /// Per-table next logical id (Django primary keys are per-model).
    next_jid: Mutex<BTreeMap<String, i64>>,
    /// When set, unmarshalling reconstructs only facets consistent
    /// with this viewer constraint (Early Pruning, §3.2).
    pruning: Option<Branches>,
    /// Whether the decode cache is active (`true` by default; the
    /// ablation experiments switch it off).
    cache_enabled: bool,
    /// Whether stale cache slots are repaired from the tables' change
    /// journals instead of waiting for a full re-decode (`true` by
    /// default; the `--deltas` ablation switches it off).
    delta_maintenance: bool,
    decoded: RwLock<HashMap<String, DecodedTable>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    delta_applies: AtomicU64,
}

impl Default for FormDb {
    fn default() -> FormDb {
        FormDb {
            db: Database::new(),
            labels: RwLock::new(LabelRegistry::new()),
            next_jid: Mutex::new(BTreeMap::new()),
            pruning: None,
            cache_enabled: true,
            delta_maintenance: true,
            decoded: RwLock::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            delta_applies: AtomicU64::new(0),
        }
    }
}

impl Clone for FormDb {
    fn clone(&self) -> FormDb {
        FormDb {
            db: self.db.clone(),
            labels: RwLock::new(self.labels.read().expect("labels lock").clone()),
            next_jid: Mutex::new(self.next_jid.lock().expect("jid lock").clone()),
            pruning: self.pruning.clone(),
            cache_enabled: self.cache_enabled,
            delta_maintenance: self.delta_maintenance,
            // A fresh clone starts cold; snapshots repopulate lazily.
            decoded: RwLock::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            delta_applies: AtomicU64::new(0),
        }
    }
}

impl FormDb {
    /// An empty faceted database.
    #[must_use]
    pub fn new() -> FormDb {
        FormDb::default()
    }

    /// Direct access to the underlying relational engine (for
    /// baselines and diagnostics; application code should stay on the
    /// faceted API). Row-level writes through the raw handle still
    /// bump table generations, so the decode cache stays correct;
    /// *structural* changes are different — `drop_table` through the
    /// raw handle must be paired with [`FormDb::create_table`] (which
    /// purges the dropped name's snapshot) rather than
    /// `Database::create_table`, because a fresh table restarts its
    /// generation counter.
    pub fn raw(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Shared access to the underlying relational engine.
    #[must_use]
    pub fn raw_ref(&self) -> &Database {
        &self.db
    }

    /// Allocates a fresh policy label.
    pub fn fresh_label(&self, name: &str) -> Label {
        self.labels.write().expect("labels lock").fresh(name)
    }

    /// Shared access to the label registry.
    ///
    /// # Panics
    ///
    /// Panics if a prior label allocation panicked mid-write.
    pub fn labels(&self) -> RwLockReadGuard<'_, LabelRegistry> {
        self.labels.read().expect("labels lock")
    }

    /// Enables Early Pruning for a known viewer constraint; queries
    /// will reconstruct only the consistent facets.
    pub fn set_pruning(&mut self, constraint: Option<Branches>) {
        self.pruning = constraint;
    }

    /// The active pruning constraint, if any.
    #[must_use]
    pub fn pruning(&self) -> Option<&Branches> {
        self.pruning.as_ref()
    }

    /// Switches the decode cache on or off (ablation hook). Returns
    /// the previous setting. Disabling also drops any cached
    /// snapshots.
    pub fn set_decode_cache(&mut self, enabled: bool) -> bool {
        let was = self.cache_enabled;
        self.cache_enabled = enabled;
        if !enabled {
            self.decoded.write().expect("decode cache lock").clear();
        }
        was
    }

    /// Whether the decode cache is active.
    #[must_use]
    pub fn decode_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Switches delta maintenance of stale cache slots on or off
    /// (ablation hook for the write-mix experiments). Returns the
    /// previous setting. With it off, a stale slot waits for the next
    /// full-table read to re-decode — the pre-journal behavior.
    pub fn set_delta_maintenance(&mut self, enabled: bool) -> bool {
        let was = self.delta_maintenance;
        self.delta_maintenance = enabled;
        was
    }

    /// Whether stale cache slots are repaired from change journals.
    #[must_use]
    pub fn delta_maintenance_enabled(&self) -> bool {
        self.delta_maintenance
    }

    /// Decode-cache hit/miss/delta counters since construction.
    #[must_use]
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        DecodeCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            delta_applies: self.delta_applies.load(Ordering::Relaxed),
        }
    }

    /// The generation stamp of the cached snapshot for `table`, if one
    /// exists — test hook for the invalidation contract (a write to
    /// table A must leave B's snapshot valid).
    #[must_use]
    pub fn cached_generation(&self, table: &str) -> Option<u64> {
        self.decoded
            .read()
            .expect("decode cache lock")
            .get(table)
            .map(|d| d.generation)
    }

    /// Creates a logical table: the user columns plus `jid`/`jvars`
    /// meta columns, with a hash index on `jid`.
    ///
    /// # Errors
    ///
    /// Propagates [`microdb::DbError`] (e.g. duplicate table).
    pub fn create_table(&mut self, name: &str, user_columns: Vec<ColumnDef>) -> FormResult<()> {
        let mut cols = user_columns;
        cols.push(ColumnDef::new(JID, ColumnType::Int));
        cols.push(ColumnDef::new(JVARS, ColumnType::Str));
        self.db.create_table(name, Schema::new(cols))?;
        self.db.table_mut(name)?.create_index(JID)?;
        // A fresh table restarts its generation at 0, so a snapshot
        // cached for a *previous* table of the same name (dropped via
        // the raw handle) could look current again once the new
        // table's write count catches up — drop it now.
        self.decoded
            .write()
            .expect("decode cache lock")
            .remove(name);
        Ok(())
    }

    /// Declares a hash index on a user column (Django indexes foreign
    /// keys by default; the FORM queries are plain SQL, so they
    /// benefit like any other query).
    ///
    /// # Errors
    ///
    /// Propagates table/column lookup errors.
    pub fn create_index(&mut self, table: &str, column: &str) -> FormResult<()> {
        self.db.table_mut(table)?.create_index(column)?;
        Ok(())
    }

    /// Number of *physical* rows in a table (facets included) — the
    /// space-overhead metric of §3.3.
    ///
    /// # Errors
    ///
    /// Propagates table-lookup errors.
    pub fn physical_rows(&self, table: &str) -> FormResult<usize> {
        Ok(self.db.table(table)?.len())
    }

    /// Reserves the next logical object id of a table without writing
    /// anything — used when the object's own `jid` must be visible to
    /// its policies before insertion.
    pub fn reserve_jid(&self, table: &str) -> i64 {
        let mut map = self.next_jid.lock().expect("jid lock");
        let next = map.entry(table.to_owned()).or_insert(1);
        let jid = *next;
        *next += 1;
        jid
    }

    /// Inserts a faceted object, returning its fresh `jid`. Each
    /// reachable facet leaf becomes one physical row with the guard
    /// encoded in `jvars`.
    ///
    /// # Errors
    ///
    /// Schema-validation errors from the engine.
    pub fn insert(&self, table: &str, object: &FacetedObject) -> FormResult<i64> {
        let jid = self.reserve_jid(table);
        self.insert_with_jid(table, jid, object)?;
        Ok(jid)
    }

    /// Inserts a faceted object under a pre-reserved `jid`.
    ///
    /// # Errors
    ///
    /// Schema-validation errors from the engine.
    pub fn insert_with_jid(&self, table: &str, jid: i64, object: &FacetedObject) -> FormResult<()> {
        self.write_rows(table, jid, object)
    }

    fn write_rows(&self, table: &str, jid: i64, object: &FacetedObject) -> FormResult<()> {
        self.write_rows_with_prelude(table, jid, object, Vec::new())
    }

    /// The marshalling loop behind every object write: `prelude`
    /// statements (e.g. [`FormDb::save`]'s delete of the old rows),
    /// then one insert per reachable facet leaf, applied and logged
    /// as a *single atomic batch* under one table write lock. A
    /// failure anywhere — a bad row, a full disk on the WAL append —
    /// rolls the whole object write back, so neither memory nor the
    /// log ever holds a torn object and reads keep serving the intact
    /// pre-write state.
    fn write_rows_with_prelude(
        &self,
        table: &str,
        jid: i64,
        object: &FacetedObject,
        prelude: Vec<Statement>,
    ) -> FormResult<()> {
        crate::touched::note_write(table);
        let mut stmts = prelude;
        for (guard, fields) in flatten_object(object) {
            let mut row: Row = fields;
            row.push(Value::Int(jid));
            row.push(Value::Str(encode_jvars(&guard)));
            stmts.push(Statement::Insert {
                table: table.to_owned(),
                row,
            });
        }
        // One write lock for the whole batch: rows of one object land
        // atomically, records stay in generation order, and replay is
        // byte-deterministic.
        let mut t = self.db.table_mut(table)?;
        self.db.apply_batch_locked(&mut t, &stmts)?;
        // Writers pay for index maintenance so the shared-access query
        // plan (`&self`) always finds fresh indexes.
        t.refresh_indexes();
        Ok(())
    }

    /// Parses one physical row (user columns + `jid` + `jvars`) into a
    /// [`GuardedRow`]. Takes a slice so callers can decode sub-ranges
    /// of joined rows without materializing intermediate `Vec`s.
    fn decode_row(row: &[Value], width: usize) -> FormResult<GuardedRow> {
        let jid = row[width]
            .as_int()
            .ok_or_else(|| FormError::BadJvars("jid is not an integer".into()))?;
        let jvars = row[width + 1]
            .as_str()
            .ok_or_else(|| FormError::BadJvars("jvars is not a string".into()))?;
        Ok(GuardedRow {
            jid,
            guard: parse_jvars(jvars)?,
            fields: row[..width].to_vec(),
        })
    }

    /// The decoded rows of `table` under an already-held table guard:
    /// served from the cache when the generation stamp still matches,
    /// unmarshalled (and, when the cache is enabled, stored) otherwise.
    ///
    /// The returned list is aligned with physical row order, so
    /// [`Query::plan_indices`] results index directly into it.
    fn decoded_rows(&self, table: &str, t: &Table) -> FormResult<FacetedList<GuardedRow>> {
        let generation = t.generation();
        if self.cache_enabled {
            self.try_delta_advance(table, t);
            if let Some(rows) = self.current_snapshot(table, generation) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(rows); // O(1): shared storage
            }
            // Only count misses while the cache is live — with the
            // cache disabled the stats stay frozen (matching every
            // other query path), so ablation counters are comparable.
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let width = t.schema().len() - 2;
        let mut pairs = Vec::with_capacity(t.len());
        for r in t.rows() {
            let g = FormDb::decode_row(r, width)?;
            // The one clone of each guard happens here — once per
            // table *generation*, not once per request.
            pairs.push((g.guard.clone(), g));
        }
        let rows: FacetedList<GuardedRow> = pairs.into_iter().collect();
        if self.cache_enabled {
            let mut cache = self.decoded.write().expect("decode cache lock");
            if let Some(slot) = FormDb::slot_at(&mut cache, table, generation) {
                slot.rows = Some(rows.clone());
            }
        }
        Ok(rows)
    }

    /// The cached decoded snapshot of `table`, if one is populated and
    /// still at `generation`.
    fn current_snapshot(&self, table: &str, generation: u64) -> Option<FacetedList<GuardedRow>> {
        let cache = self.decoded.read().expect("decode cache lock");
        let slot = cache.get(table)?;
        if slot.generation != generation {
            return None;
        }
        slot.rows.clone()
    }

    /// Delta maintenance: when `table`'s cache slot is stale but the
    /// table's change journal still covers the window between the
    /// slot's generation and the present, repair the slot in place —
    /// append/rewrite/remove only the touched rows of the decoded
    /// snapshot, evict only the touched objects' memos — instead of
    /// leaving the whole slot to a full re-decode. A single-row insert
    /// into an n-row table thus costs one row decode, not n.
    ///
    /// This is strictly an optimization: a slid-past journal window
    /// leaves the slot stale (next full read re-decodes), and a row
    /// that fails to decode evicts the slot outright (a full decode
    /// would fail on the same row) — correctness never depends on the
    /// journal.
    fn try_delta_advance(&self, table: &str, t: &Table) {
        if !self.cache_enabled || !self.delta_maintenance {
            return;
        }
        let generation = t.generation();
        let mut cache = self.decoded.write().expect("decode cache lock");
        let Some(slot) = cache.get_mut(table) else {
            return;
        };
        if slot.generation >= generation {
            return;
        }
        let Some(deltas) = t.deltas_since(slot.generation) else {
            return; // window slid past the slot: full decode rebuilds
        };
        let width = t.schema().len() - 2;
        let jid_of = |row: &Row| row[width].as_int();
        for delta in deltas {
            match delta {
                RowDelta::Append(row) => {
                    if let Some(jid) = jid_of(row) {
                        slot.objects.remove(&jid);
                    }
                    if let Some(rows) = &mut slot.rows {
                        match FormDb::decode_row(row, width) {
                            Ok(g) => rows.push(g.guard.clone(), g),
                            Err(_) => {
                                cache.remove(table);
                                return;
                            }
                        }
                    }
                }
                RowDelta::Rewrite(rewrites) => {
                    for (ix, old, new) in rewrites {
                        if let Some(jid) = jid_of(old) {
                            slot.objects.remove(&jid);
                        }
                        if let Some(jid) = jid_of(new) {
                            slot.objects.remove(&jid);
                        }
                        if let Some(rows) = &mut slot.rows {
                            match FormDb::decode_row(new, width) {
                                Ok(g) => rows.replace_row(*ix, g.guard.clone(), g),
                                Err(_) => {
                                    cache.remove(table);
                                    return;
                                }
                            }
                        }
                    }
                }
                RowDelta::Remove(removals) => {
                    // Descending order keeps the earlier indices valid.
                    for (ix, row) in removals.iter().rev() {
                        if let Some(jid) = jid_of(row) {
                            slot.objects.remove(&jid);
                        }
                        if let Some(rows) = &mut slot.rows {
                            rows.remove_row(*ix);
                        }
                    }
                }
            }
        }
        slot.generation = generation;
        self.delta_applies.fetch_add(1, Ordering::Relaxed);
    }

    /// The rebuilt facet DAG of `(table, jid)` from the object layer
    /// of the decode cache, if the slot is still current.
    fn cached_object(&self, table: &str, generation: u64, jid: i64) -> Option<FacetedObject> {
        let cache = self.decoded.read().expect("decode cache lock");
        let slot = cache.get(table)?;
        if slot.generation != generation {
            return None;
        }
        slot.objects.get(&jid).cloned()
    }

    /// The cache slot for `(table, generation)`, creating or resetting
    /// it as needed. Generations are monotonic, so data derived at an
    /// *older* generation must never overwrite a newer slot — callers
    /// get `None` in that case and simply skip caching.
    fn slot_at<'c>(
        cache: &'c mut HashMap<String, DecodedTable>,
        table: &str,
        generation: u64,
    ) -> Option<&'c mut DecodedTable> {
        let slot = cache.entry(table.to_owned()).or_default();
        if slot.generation < generation {
            *slot = DecodedTable {
                generation,
                rows: None,
                objects: HashMap::new(),
            };
        }
        (slot.generation == generation).then_some(slot)
    }

    /// Stores a rebuilt object in the cache (kept only while the slot
    /// generation still matches, so a concurrent write can never
    /// resurrect a stale DAG).
    fn store_object(&self, table: &str, generation: u64, jid: i64, obj: &FacetedObject) {
        let mut cache = self.decoded.write().expect("decode cache lock");
        if let Some(slot) = FormDb::slot_at(&mut cache, table, generation) {
            slot.objects.insert(jid, obj.clone());
        }
    }

    /// Runs a single-table query and returns its result as decoded
    /// guarded rows, reusing the cached snapshot whenever the planner
    /// can express the result as physical row indices.
    fn select_decoded(
        &self,
        table: &str,
        query: &Query,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        crate::touched::note_read(table);
        let t = self.db.table(table)?;
        let width = t.schema().len() - 2;
        let Some(indices) = query.plan_indices(&t)? else {
            // Shapes the index planner cannot express (none of the
            // FORM's own queries hit this; kept for robustness).
            drop(t);
            let rows = query.execute_ref(&self.db)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in &rows {
                let g = FormDb::decode_row(r, width)?;
                out.push((g.guard.clone(), g));
            }
            let list: FacetedList<GuardedRow> = out.into_iter().collect();
            return Ok(FormDb::pruned(list, prune));
        };
        let full_selection =
            indices.len() == t.len() && indices.iter().enumerate().all(|(p, &i)| p == i);
        if self.cache_enabled {
            self.try_delta_advance(table, &t);
            if let Some(decoded) = self.current_snapshot(table, t.generation()) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                drop(t);
                if full_selection {
                    // Full-table selection in physical order (e.g.
                    // `all`): share the snapshot outright.
                    return Ok(FormDb::pruned(decoded, prune));
                }
                let subset: FacetedList<GuardedRow> = indices
                    .iter()
                    .map(|&i| {
                        let (guard, row) = decoded.row(i);
                        (guard.clone(), row.clone())
                    })
                    .collect();
                return Ok(FormDb::pruned(subset, prune));
            }
            if full_selection {
                // Cold/stale snapshot and the query wants everything:
                // decode once, store, share.
                let decoded = self.decoded_rows(table, &t)?;
                drop(t);
                return Ok(FormDb::pruned(decoded, prune));
            }
            // Cold/stale snapshot but the query is *selective* (e.g.
            // an indexed `get` right after a write): decode only the
            // matched rows instead of unmarshalling the whole table —
            // otherwise a write+get loop over n objects would cost
            // O(n²) total decodes. The snapshot is rebuilt by the
            // next full-table read.
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        // Selected-rows-only decode: the selective-miss path above and
        // the ablation (`cache_enabled == false`) path, which is the
        // pre-cache behavior.
        let rows = t.rows();
        let mut out = Vec::with_capacity(indices.len());
        for &i in &indices {
            let g = FormDb::decode_row(&rows[i], width)?;
            out.push((g.guard.clone(), g));
        }
        let list: FacetedList<GuardedRow> = out.into_iter().collect();
        Ok(FormDb::pruned(list, prune))
    }

    fn pruned(rows: FacetedList<GuardedRow>, prune: Option<&Branches>) -> FacetedList<GuardedRow> {
        match prune {
            None => rows,
            Some(constraint) => rows.prune(constraint),
        }
    }

    /// All guarded rows of a table — the faceted `objects.all()` —
    /// pruned by the database-level constraint, if one is set.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn all(&self, table: &str) -> FormResult<FacetedList<GuardedRow>> {
        self.all_with(table, self.pruning.as_ref())
    }

    /// [`FormDb::all`] with an explicit Early-Pruning constraint,
    /// letting each concurrent request keep its pruning state
    /// thread-local instead of mutating the shared handle.
    ///
    /// On a cache hit with no constraint this is O(1): the returned
    /// list shares the cached snapshot's storage.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn all_with(
        &self,
        table: &str,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        crate::touched::note_read(table);
        let t = self.db.table(table)?;
        let rows = self.decoded_rows(table, &t)?;
        drop(t);
        Ok(FormDb::pruned(rows, prune))
    }

    /// Faceted `filter`: issues the WHERE query directly against the
    /// physical table — because each facet lives in its own row,
    /// standard relational filtering is already flow-correct (§3.1.1).
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn filter(&self, table: &str, predicate: Predicate) -> FormResult<FacetedList<GuardedRow>> {
        self.filter_with(table, predicate, self.pruning.as_ref())
    }

    /// [`FormDb::filter`] with an explicit Early-Pruning constraint.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn filter_with(
        &self,
        table: &str,
        predicate: Predicate,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        let query = Query::from(table).filter(predicate);
        self.select_decoded(table, &query, prune)
    }

    /// Faceted equality filter on one column.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn filter_eq(
        &self,
        table: &str,
        column: &str,
        value: Value,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.filter(
            table,
            Predicate::eq(Operand::col(column), Operand::Lit(value)),
        )
    }

    /// Faceted `ORDER BY`: relies on SQL sorting of physical rows —
    /// secret and public facets sort independently because they are
    /// separate rows (§3.1.1).
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn order_by(
        &self,
        table: &str,
        column: &str,
        order: SortOrder,
    ) -> FormResult<FacetedList<GuardedRow>> {
        self.order_by_with(table, column, order, self.pruning.as_ref())
    }

    /// [`FormDb::order_by`] with an explicit Early-Pruning constraint.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn order_by_with(
        &self,
        table: &str,
        column: &str,
        order: SortOrder,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<GuardedRow>> {
        let query = Query::from(table).order_by(column, order);
        self.select_decoded(table, &query, prune)
    }

    /// Faceted join: `left JOIN right ON left.fk = right.jid`,
    /// unioning the guards of both sides — the translated query of
    /// Table 2. Pairs whose combined guard is contradictory are
    /// dropped (no view could see them).
    ///
    /// Both sides come from the decode cache, so the join never
    /// re-parses `jvars` and never materializes intermediate raw-row
    /// copies.
    ///
    /// Returns `(left_row, right_row)` pairs with the combined guard.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn join_on_fk(
        &self,
        left: &str,
        fk_column: &str,
        right: &str,
    ) -> FormResult<FacetedList<(GuardedRow, GuardedRow)>> {
        self.join_on_fk_with(left, fk_column, right, self.pruning.as_ref())
    }

    /// [`FormDb::join_on_fk`] with an explicit Early-Pruning
    /// constraint.
    ///
    /// # Errors
    ///
    /// Table lookup / decoding errors.
    pub fn join_on_fk_with(
        &self,
        left: &str,
        fk_column: &str,
        right: &str,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedList<(GuardedRow, GuardedRow)>> {
        crate::touched::note_read(left);
        crate::touched::note_read(right);
        let (ldec, fk_ix) = {
            let t = self.db.table(left)?;
            let fk_ix = t
                .schema()
                .column_index(fk_column)
                .ok_or_else(|| microdb::DbError::NoSuchColumn(fk_column.to_owned()))?;
            // The fk must be a *user* column: decoded rows carry only
            // the user fields, and joining on the meta columns
            // (`jid`/`jvars`) is not a faceted foreign key.
            if fk_ix >= t.schema().len() - 2 {
                return Err(FormError::Db(microdb::DbError::InvalidOperation(format!(
                    "join_on_fk: {fk_column} is a meta column, not a user foreign key"
                ))));
            }
            (self.decoded_rows(left, &t)?, fk_ix)
        };
        let rdec = if left == right {
            ldec.clone()
        } else {
            let t = self.db.table(right)?;
            self.decoded_rows(right, &t)?
        };

        // Hash join on the right side's jid, in physical row order —
        // the same pairing (and ordering) the relational hash join
        // produces.
        let mut by_jid: HashMap<i64, Vec<usize>> = HashMap::new();
        for (i, (_, r)) in rdec.iter().enumerate() {
            by_jid.entry(r.jid).or_default().push(i);
        }
        let mut out = FacetedList::new();
        for (_, l) in ldec.iter() {
            let Some(fk) = l.fields[fk_ix].as_int() else {
                continue; // NULL (or non-integer) keys never join
            };
            let Some(matches) = by_jid.get(&fk) else {
                continue;
            };
            for &ri in matches {
                let (_, r) = rdec.row(ri);
                let guard = l.guard.union(&r.guard);
                if !guard.is_consistent() {
                    continue;
                }
                let mut l = l.clone();
                let mut r = r.clone();
                l.guard = guard.clone();
                r.guard = guard.clone();
                out.push(guard, (l, r));
            }
        }
        if let Some(constraint) = prune {
            out = out.prune(constraint);
        }
        Ok(out)
    }

    /// Reconstructs one logical object from its physical rows.
    ///
    /// # Errors
    ///
    /// [`FormError::NoSuchObject`] if no row carries this `jid`;
    /// [`FormError::FacetConflict`] on ambiguous facets.
    pub fn get(&self, table: &str, jid: i64) -> FormResult<FacetedObject> {
        self.get_with(table, jid, self.pruning.as_ref())
    }

    /// [`FormDb::get`] with an explicit Early-Pruning constraint.
    ///
    /// Unpruned lookups are memoized per `(table, jid)` in the decode
    /// cache's object layer: the facet DAG is rebuilt once per table
    /// generation and shared by every subsequent request (policies
    /// re-fetch the same profile objects constantly — the paper's
    /// Table 4 workload). Pruned lookups rebuild from the decoded
    /// rows, which still skips all `jvars` parsing.
    ///
    /// # Errors
    ///
    /// Same as [`FormDb::get`].
    pub fn get_with(
        &self,
        table: &str,
        jid: i64,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedObject> {
        crate::touched::note_read(table);
        if self.cache_enabled && prune.is_none() {
            let generation = {
                let t = self.db.table(table)?;
                // Repair the slot before probing the object layer, so
                // memos of objects the write did not touch stay warm.
                self.try_delta_advance(table, &t);
                t.generation()
            };
            if let Some(obj) = self.cached_object(table, generation, jid) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(obj);
            }
            let obj = self.rebuild_from_rows(table, jid, None)?;
            self.store_object(table, generation, jid, &obj);
            return Ok(obj);
        }
        self.rebuild_from_rows(table, jid, prune)
    }

    /// Rebuilds one object's facet DAG from its (decoded) physical
    /// rows — the slow path behind the object cache.
    fn rebuild_from_rows(
        &self,
        table: &str,
        jid: i64,
        prune: Option<&Branches>,
    ) -> FormResult<FacetedObject> {
        let query = Query::from(table).filter(Predicate::eq(Operand::col(JID), Operand::lit(jid)));
        let rows = self.select_decoded(table, &query, None)?;
        if rows.is_empty() {
            return Err(FormError::NoSuchObject {
                table: table.to_owned(),
                jid,
            });
        }
        let guarded: Vec<(Branches, Row)> = rows
            .iter()
            .filter(|(g, _)| prune.is_none_or(|c| g.consistent_with(c)))
            .map(|(_, r)| (r.guard.clone(), r.fields.clone()))
            .collect();
        rebuild_object(jid, &guarded)
    }

    /// Saves an object under a path condition: the paper's guarded
    /// write (§2.2/§3.1.2). The stored object becomes
    /// `⟨⟨pc ? new : current⟩⟩`; with an empty `pc` this is a plain
    /// overwrite.
    ///
    /// # Errors
    ///
    /// Lookup/decoding errors; a missing object is treated as absent
    /// (`None` facets) rather than an error, so guarded creation
    /// works.
    pub fn save(
        &self,
        table: &str,
        jid: i64,
        new: &FacetedObject,
        pc: &Branches,
    ) -> FormResult<()> {
        let current = match self.get(table, jid) {
            Ok(cur) => cur,
            Err(FormError::NoSuchObject { .. }) => faceted::Faceted::leaf(None),
            Err(e) => return Err(e),
        };
        let merged = faceted::Faceted::split_branches(pc, new.clone(), current);
        // Fast path: when the merged object flattens to exactly the
        // guard set its stored rows already carry, overwrite each row
        // where it sits. Physical positions are preserved, so a
        // single-object save dirties O(object) of the table — the
        // property the incremental checkpointer's row-range chunks
        // rely on — instead of shifting the whole tail.
        if let Some(stmts) = self.in_place_save_stmts(table, jid, &merged)? {
            crate::touched::note_write(table);
            let mut t = self.db.table_mut(table)?;
            self.db.apply_batch_locked(&mut t, &stmts)?;
            t.refresh_indexes();
            return Ok(());
        }
        // Delete-then-reinsert as ONE atomic batch: a failure (e.g. a
        // WAL append on a full disk) must not leave the object
        // deleted-but-not-rewritten in memory or in the log.
        self.write_rows_with_prelude(
            table,
            jid,
            &merged,
            vec![Statement::Delete {
                table: table.to_owned(),
                pred: Predicate::eq(Operand::col(JID), Operand::lit(jid)),
            }],
        )
    }

    /// Builds the per-row `Update` batch of the in-place save fast
    /// path, or `None` when the write must fall back to
    /// delete + re-insert: the object's guard structure changed (its
    /// flattened `jvars` set differs from the stored rows'), a guard
    /// repeats (the per-guard predicate would no longer address one
    /// row), or the object has no stored rows yet.
    ///
    /// Each statement targets one stored row by `(jid, jvars)` and
    /// reassigns every user column, so the batch replays to the same
    /// physical state the live table reached — row order included.
    fn in_place_save_stmts(
        &self,
        table: &str,
        jid: i64,
        merged: &FacetedObject,
    ) -> FormResult<Option<Vec<Statement>>> {
        let flat = flatten_object(merged);
        let t = self.db.table(table)?;
        let schema = t.schema();
        let width = schema.len() - 2;
        let mut current: Vec<String> = Vec::new();
        for row in t.rows() {
            if row[width].as_int() == Some(jid) {
                match row[width + 1].as_str() {
                    Some(s) => current.push(s.to_owned()),
                    None => return Ok(None),
                }
            }
        }
        if current.is_empty()
            || current.len() != flat.len()
            || flat.iter().any(|(_, fields)| fields.len() != width)
        {
            return Ok(None);
        }
        let user_cols: Vec<String> = schema.columns()[..width]
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        drop(t);
        let encoded: Vec<(String, &Row)> = flat
            .iter()
            .map(|(guard, fields)| (encode_jvars(guard), fields))
            .collect();
        let mut stored: Vec<&str> = current.iter().map(String::as_str).collect();
        let mut fresh: Vec<&str> = encoded.iter().map(|(g, _)| g.as_str()).collect();
        stored.sort_unstable();
        fresh.sort_unstable();
        if stored != fresh || fresh.windows(2).any(|w| w[0] == w[1]) {
            return Ok(None);
        }
        Ok(Some(
            encoded
                .into_iter()
                .map(|(guard, fields)| Statement::Update {
                    table: table.to_owned(),
                    pred: Predicate::eq(Operand::col(JID), Operand::lit(jid))
                        .and(Predicate::eq(Operand::col(JVARS), Operand::lit(guard))),
                    assignments: user_cols
                        .iter()
                        .cloned()
                        .zip(fields.iter().cloned())
                        .collect(),
                })
                .collect(),
        ))
    }

    /// Deletes an object under a path condition: views satisfying
    /// `pc` stop seeing it, others keep it (implemented as a guarded
    /// save of the absent object).
    ///
    /// # Errors
    ///
    /// Same as [`FormDb::save`].
    pub fn delete(&self, table: &str, jid: i64, pc: &Branches) -> FormResult<()> {
        self.save(table, jid, &faceted::Faceted::leaf(None), pc)
    }

    // -----------------------------------------------------------------
    // Persistence: metadata export/restore, snapshot restore with
    // decode-cache revalidation, write-log plumbing.
    // -----------------------------------------------------------------

    /// Attaches an append-only write log to the storage engine: every
    /// row-level write (FORM marshalling included) appends a durable
    /// record. See [`microdb::WriteLog`].
    pub fn attach_wal(&mut self, wal: std::sync::Arc<microdb::WriteLog>) {
        self.db.attach_wal(wal);
    }

    /// Exports the FORM's metadata: label-registry names and per-table
    /// `jid` cursors (see [`crate::FormMeta`] for why both must
    /// survive a restart).
    #[must_use]
    pub fn export_meta(&self) -> crate::FormMeta {
        crate::FormMeta {
            labels: self.labels.read().expect("labels lock").export_names(),
            next_jid: self.next_jid.lock().expect("jid lock").clone(),
        }
    }

    /// Restores metadata exported by [`FormDb::export_meta`],
    /// replacing the registry and the `jid` cursors wholesale.
    pub fn restore_meta(&mut self, meta: &crate::FormMeta) {
        *self.labels.write().expect("labels lock") =
            LabelRegistry::from_names(meta.labels.iter().cloned());
        *self.next_jid.lock().expect("jid lock") = meta.next_jid.clone();
    }

    /// Appends one stored label name to the registry — the meta-log
    /// replay path (allocations recorded after the last checkpoint).
    /// Returns the label the name now maps to.
    pub fn import_label(&self, stored_name: &str) -> Label {
        self.labels
            .write()
            .expect("labels lock")
            .import(stored_name)
    }

    /// Advances a table's `jid` cursor to at least `next` (replay of
    /// post-checkpoint object creations; also used to re-derive the
    /// cursor from restored rows).
    pub fn bump_next_jid(&self, table: &str, next: i64) {
        let mut map = self.next_jid.lock().expect("jid lock");
        let cur = map.entry(table.to_owned()).or_insert(1);
        *cur = (*cur).max(next);
    }

    /// Replaces the storage engine's contents with a snapshot,
    /// **revalidating** the decode cache against the restored
    /// generation stamps instead of flushing it: a cached slot whose
    /// generation equals the restored table's stamp describes exactly
    /// the restored rows (generations are monotonic within a
    /// lineage, and a checkpoint is a point on this database's own
    /// lineage), so it stays warm; any other slot is dropped.
    ///
    /// Restoring a checkpoint and immediately serving reads therefore
    /// costs zero re-decodes for tables that were not written after
    /// the checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates [`microdb::Database::restore`] errors; on error the
    /// database and cache are unchanged.
    pub fn restore_database(&mut self, snapshot: &microdb::Snapshot) -> FormResult<()> {
        self.db.restore(snapshot)?;
        let mut cache = self.decoded.write().expect("decode cache lock");
        cache.retain(|table, slot| {
            self.db
                .generation(table)
                .is_ok_and(|g| g == slot.generation)
        });
        Ok(())
    }

    /// Seeds the decode cache's object layer with an already-rebuilt
    /// facet DAG for `(table, jid)` **at the table's current
    /// generation** — the warm-start path of checkpoint restore
    /// (imported DAGs are re-interned, so priming preserves the
    /// exporting process's node sharing).
    ///
    /// # Errors
    ///
    /// Table-lookup errors.
    pub fn prime_object(&self, table: &str, jid: i64, obj: &FacetedObject) -> FormResult<()> {
        let generation = self.db.table(table)?.generation();
        if self.cache_enabled {
            self.store_object(table, generation, jid, obj);
        }
        Ok(())
    }

    /// The `jid`s of every logical object in `table`, ascending — the
    /// checkpoint writer enumerates objects with this.
    ///
    /// # Errors
    ///
    /// Table-lookup errors.
    pub fn object_jids(&self, table: &str) -> FormResult<Vec<i64>> {
        let t = self.db.table(table)?;
        let jid_ix = t.schema().len() - 2;
        let mut jids: Vec<i64> = t.rows().iter().filter_map(|r| r[jid_ix].as_int()).collect();
        jids.sort_unstable();
        jids.dedup();
        Ok(jids)
    }

    /// The `jid`s of every logical object in `table`, in
    /// **first-appearance physical-row order** — the order a list page
    /// that scans the table renders objects in. This differs from
    /// [`FormDb::object_jids`] (ascending) because `save` re-inserts:
    /// an updated object's rows move to the table's end, and so does
    /// its rendered line.
    ///
    /// # Errors
    ///
    /// Table-lookup errors.
    pub fn jid_order(&self, table: &str) -> FormResult<Vec<i64>> {
        crate::touched::note_read(table);
        let t = self.db.table(table)?;
        let jid_ix = t.schema().len() - 2;
        let mut seen = std::collections::HashSet::new();
        let mut jids = Vec::new();
        for row in t.rows() {
            if let Some(jid) = row[jid_ix].as_int() {
                if seen.insert(jid) {
                    jids.push(jid);
                }
            }
        }
        Ok(jids)
    }

    /// The `jid`s whose rows appear in `table`'s change journal after
    /// generation `since`: old **and** new rows of every delta,
    /// deduplicated and sorted ascending. `None` when the journal
    /// window has slid past `since`, when `since` is from the future
    /// (a restore to an older checkpoint), or when a journaled row
    /// carries a non-integer jid — in every such case the caller must
    /// fall back to a full rebuild, exactly like the decode cache's
    /// [`delta-advance`](FormDb::set_delta_maintenance) contract:
    /// correctness never depends on the journal.
    ///
    /// # Errors
    ///
    /// Table-lookup errors.
    pub fn touched_jids_since(&self, table: &str, since: u64) -> FormResult<Option<Vec<i64>>> {
        crate::touched::note_read(table);
        let t = self.db.table(table)?;
        let Some(deltas) = t.deltas_since(since) else {
            return Ok(None);
        };
        let width = t.schema().len() - 2;
        let mut jids = Vec::new();
        let mut push = |row: &Row| -> bool {
            row[width].as_int().is_some_and(|jid| {
                jids.push(jid);
                true
            })
        };
        for delta in deltas {
            let journaled = match delta {
                RowDelta::Append(row) => push(row),
                RowDelta::Rewrite(rewrites) => {
                    rewrites.iter().all(|(_, old, new)| push(old) && push(new))
                }
                RowDelta::Remove(removals) => removals.iter().all(|(_, row)| push(row)),
            };
            if !journaled {
                return Ok(None);
            }
        }
        jids.sort_unstable();
        jids.dedup();
        Ok(Some(jids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faceted::{Branch, Faceted, View};

    fn event_db() -> (FormDb, Label, i64) {
        let mut db = FormDb::new();
        db.create_table(
            "event",
            vec![
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("location", ColumnType::Str),
            ],
        )
        .unwrap();
        let k = db.fresh_label("event_policy");
        let obj = Faceted::split(
            k,
            Faceted::leaf(Some(vec![
                Value::from("Carol's surprise party"),
                Value::from("Schloss Dagstuhl"),
            ])),
            Faceted::leaf(Some(vec![
                Value::from("Private event"),
                Value::from("Undisclosed location"),
            ])),
        );
        let jid = db.insert("event", &obj).unwrap();
        (db, k, jid)
    }

    #[test]
    fn insert_stores_one_row_per_facet() {
        let (db, _, _) = event_db();
        assert_eq!(db.physical_rows("event").unwrap(), 2);
    }

    #[test]
    fn get_round_trips_facets() {
        let (db, k, jid) = event_db();
        let obj = db.get("event", jid).unwrap();
        let secret = obj.project(&View::from_labels([k])).clone().unwrap();
        let public = obj.project(&View::empty()).clone().unwrap();
        assert_eq!(secret[0], Value::from("Carol's surprise party"));
        assert_eq!(public[1], Value::from("Undisclosed location"));
    }

    #[test]
    fn filter_tracks_sensitive_values() {
        // The §3.1.1 query: only the secret facet matches; the result
        // is guarded so only authorized viewers see the event.
        let (db, k, _) = event_db();
        let result = db
            .filter_eq("event", "location", Value::from("Schloss Dagstuhl"))
            .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.project(&View::from_labels([k])).len(), 1);
        assert!(result.project(&View::empty()).is_empty());
    }

    #[test]
    fn order_by_sorts_facets_independently() {
        // §3.1.1: ⟨a?"Charlie":"***"⟩, ⟨b?"Bob":"***"⟩, ⟨c?"Alice":"***"⟩
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("f", ColumnType::Str)])
            .unwrap();
        let (a, b, c) = (
            db.fresh_label("a"),
            db.fresh_label("b"),
            db.fresh_label("c"),
        );
        for (l, name) in [(a, "Charlie"), (b, "Bob"), (c, "Alice")] {
            let obj = Faceted::split(
                l,
                Faceted::leaf(Some(vec![Value::from(name)])),
                Faceted::leaf(Some(vec![Value::from("***")])),
            );
            db.insert("t", &obj).unwrap();
        }
        let sorted = db.order_by("t", "f", SortOrder::Asc).unwrap();
        // View {a, ¬b, c}: sees "Charlie", "***", "Alice" — sorted
        // as ["***", "Alice", "Charlie"] (the paper's example).
        let view = View::from_labels([a, c]);
        let names: Vec<String> = sorted
            .project(&view)
            .into_iter()
            .map(|g| g.fields[0].as_str().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["***", "Alice", "Charlie"]);
    }

    #[test]
    fn join_unions_jvars_from_both_tables() {
        let (mut db, k, jid) = event_db();
        db.create_table(
            "guest",
            vec![
                ColumnDef::new("event", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        )
        .unwrap();
        let g = db.fresh_label("guest_policy");
        let guest = Faceted::split(
            g,
            Faceted::leaf(Some(vec![Value::Int(jid), Value::from("alice")])),
            Faceted::leaf(None),
        );
        db.insert("guest", &guest).unwrap();

        let joined = db.join_on_fk("guest", "event", "event").unwrap();
        // Pairs: (guest-secret × event-secret), (guest-secret × event-public).
        assert_eq!(joined.len(), 2);
        let both = View::from_labels([k, g]);
        let seen = joined.project(&both);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1.fields[0], Value::from("Carol's surprise party"));
        // A viewer with only g sees the public event side.
        let only_g = View::from_labels([g]);
        let seen = joined.project(&only_g);
        assert_eq!(seen[0].1.fields[0], Value::from("Private event"));
        // A viewer without g sees no joined row at all.
        assert!(joined.project(&View::from_labels([k])).is_empty());
    }

    #[test]
    fn save_without_pc_overwrites() {
        let (db, _, jid) = event_db();
        let new = Faceted::leaf(Some(vec![Value::from("X"), Value::from("Y")]));
        db.save("event", jid, &new, &Branches::new()).unwrap();
        assert_eq!(db.physical_rows("event").unwrap(), 1);
        let obj = db.get("event", jid).unwrap();
        assert_eq!(obj, new);
    }

    #[test]
    fn save_under_pc_keeps_old_value_for_other_views() {
        // The Dagstuhl-update example of §2.2: a write inside a branch
        // on sensitive data becomes ⟨k ? new : old⟩.
        let (db, k, jid) = event_db();
        let new = Faceted::leaf(Some(vec![
            Value::from("Carol's surprise party"),
            Value::from("Dagstuhl event!"),
        ]));
        let pc = Branches::new().with(Branch::pos(k));
        db.save("event", jid, &new, &pc).unwrap();
        let obj = db.get("event", jid).unwrap();
        assert_eq!(
            obj.project(&View::from_labels([k])).clone().unwrap()[1],
            Value::from("Dagstuhl event!")
        );
        assert_eq!(
            obj.project(&View::empty()).clone().unwrap()[1],
            Value::from("Undisclosed location"),
            "unauthorized views keep the old facet"
        );
    }

    #[test]
    fn guarded_delete_hides_for_matching_views() {
        let (db, k, jid) = event_db();
        let pc = Branches::new().with(Branch::pos(k));
        db.delete("event", jid, &pc).unwrap();
        let obj = db.get("event", jid).unwrap();
        assert_eq!(obj.project(&View::from_labels([k])), &None);
        assert!(obj.project(&View::empty()).is_some());
    }

    #[test]
    fn full_delete_removes_object() {
        let (db, _, jid) = event_db();
        db.delete("event", jid, &Branches::new()).unwrap();
        assert!(matches!(
            db.get("event", jid),
            Err(FormError::NoSuchObject { .. })
        ));
        assert_eq!(db.physical_rows("event").unwrap(), 0);
    }

    #[test]
    fn form_db_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormDb>();
        assert_send_sync::<FacetedObject>();
        assert_send_sync::<FacetedList<crate::GuardedRow>>();
    }

    #[test]
    fn explicit_constraint_matches_db_level_pruning() {
        let (mut db, k, jid) = event_db();
        let constraint = Branches::new().with(Branch::pos(k));
        let explicit_all = db.all_with("event", Some(&constraint)).unwrap();
        let explicit_get = db.get_with("event", jid, Some(&constraint)).unwrap();
        db.set_pruning(Some(constraint));
        assert_eq!(db.all("event").unwrap(), explicit_all);
        assert_eq!(db.get("event", jid).unwrap(), explicit_get);
        assert_eq!(explicit_all.len(), 1);
    }

    #[test]
    fn early_pruning_reconstructs_fewer_facets() {
        let (mut db, k, _) = event_db();
        db.set_pruning(Some(Branches::new().with(Branch::pos(k))));
        let all = db.all("event").unwrap();
        assert_eq!(all.len(), 1, "only the consistent facet is unmarshalled");
        assert_eq!(
            all.project(&View::from_labels([k]))[0].fields[0],
            Value::from("Carol's surprise party")
        );
    }

    #[test]
    fn pruned_get_matches_unpruned_projection() {
        let (mut db, k, jid) = event_db();
        let full = db.get("event", jid).unwrap();
        db.set_pruning(Some(Branches::new().with(Branch::pos(k))));
        let pruned = db.get("event", jid).unwrap();
        let view = View::from_labels([k]);
        assert_eq!(pruned.project(&view), full.project(&view));
    }

    #[test]
    fn missing_object_is_reported() {
        let (db, _, _) = event_db();
        assert!(matches!(
            db.get("event", 999),
            Err(FormError::NoSuchObject { .. })
        ));
    }

    #[test]
    fn malformed_jvars_detected() {
        let (mut db, _, _) = event_db();
        db.raw()
            .insert(
                "event",
                vec![
                    Value::from("x"),
                    Value::from("y"),
                    Value::Int(50),
                    Value::from("garbage-jvars"),
                ],
            )
            .unwrap();
        assert!(matches!(db.get("event", 50), Err(FormError::BadJvars(_))));
    }

    #[test]
    fn cache_hit_shares_storage_and_survives_reads() {
        let (db, _, jid) = event_db();
        let first = db.all("event").unwrap();
        let second = db.all("event").unwrap();
        assert!(
            second.shares_rows_with(&first),
            "a cache hit returns the same decoded snapshot"
        );
        let stats = db.decode_cache_stats();
        assert_eq!(stats.misses, 1, "one cold decode");
        assert!(stats.hits >= 1);
        // Reads (get / filter) also ride the snapshot without
        // invalidating it.
        let _ = db.get("event", jid).unwrap();
        let _ = db
            .filter_eq("event", "location", Value::from("Schloss Dagstuhl"))
            .unwrap();
        assert_eq!(db.decode_cache_stats().misses, 1);
    }

    #[test]
    fn writes_invalidate_exactly_the_written_table() {
        let (mut db, _, _) = event_db();
        db.create_table("other", vec![ColumnDef::new("x", ColumnType::Int)])
            .unwrap();
        db.insert("other", &Faceted::leaf(Some(vec![Value::Int(1)])))
            .unwrap();
        let _ = db.all("event").unwrap();
        let _ = db.all("other").unwrap();
        let event_gen = db.cached_generation("event").unwrap();
        let other_gen = db.cached_generation("other").unwrap();

        // A write to `other` must stale only `other`'s snapshot.
        db.insert("other", &Faceted::leaf(Some(vec![Value::Int(2)])))
            .unwrap();
        assert_eq!(
            db.cached_generation("event"),
            Some(event_gen),
            "unrelated table keeps its snapshot"
        );
        assert_eq!(db.raw_ref().generation("event").unwrap(), event_gen);
        assert!(db.raw_ref().generation("other").unwrap() > other_gen);

        let stats_before = db.decode_cache_stats();
        let _ = db.all("event").unwrap();
        assert_eq!(
            db.decode_cache_stats().misses,
            stats_before.misses,
            "event still served from cache"
        );
        assert_eq!(
            db.decode_cache_stats().delta_applies,
            stats_before.delta_applies,
            "a current slot needs no repair"
        );
        let rows = db.all("other").unwrap();
        assert_eq!(rows.len(), 2, "the write is visible");
        assert_eq!(
            db.decode_cache_stats().misses,
            stats_before.misses,
            "other's stale slot is repaired from deltas, not re-decoded"
        );
        assert_eq!(
            db.decode_cache_stats().delta_applies,
            stats_before.delta_applies + 1
        );

        // With delta maintenance ablated, the same write pattern pays
        // the full re-decode — the pre-journal behavior.
        db.set_delta_maintenance(false);
        db.insert("other", &Faceted::leaf(Some(vec![Value::Int(3)])))
            .unwrap();
        let misses_before = db.decode_cache_stats().misses;
        let _ = db.all("other").unwrap();
        assert_eq!(
            db.decode_cache_stats().misses,
            misses_before + 1,
            "other re-decoded after the write with deltas off"
        );
    }

    #[test]
    fn cache_disabled_path_is_identical() {
        let (mut db, k, jid) = event_db();
        let cached_all = db.all("event").unwrap();
        let cached_get = db.get("event", jid).unwrap();
        let constraint = Branches::new().with(Branch::pos(k));
        let cached_pruned = db.all_with("event", Some(&constraint)).unwrap();
        db.set_decode_cache(false);
        assert_eq!(db.all("event").unwrap(), cached_all);
        assert_eq!(db.get("event", jid).unwrap(), cached_get);
        assert_eq!(
            db.all_with("event", Some(&constraint)).unwrap(),
            cached_pruned
        );
        assert_eq!(db.cached_generation("event"), None, "snapshots dropped");
    }

    #[test]
    fn join_on_meta_column_is_an_error_not_a_panic() {
        let (db, _, _) = event_db();
        assert!(matches!(
            db.join_on_fk("event", JID, "event"),
            Err(FormError::Db(microdb::DbError::InvalidOperation(_)))
        ));
        assert!(matches!(
            db.join_on_fk("event", "nope", "event"),
            Err(FormError::Db(microdb::DbError::NoSuchColumn(_)))
        ));
    }

    #[test]
    fn selective_get_after_write_does_not_decode_whole_table() {
        // A write+get loop must stay O(rows-of-the-object) per get,
        // not O(table). With delta maintenance the stale snapshot is
        // repaired in place (one decoded row per insert); with it
        // ablated, an indexed single-object lookup decodes only its
        // matched rows and leaves snapshot rebuilding to the next
        // full-table read.
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        for i in 0..64 {
            db.insert("t", &Faceted::leaf(Some(vec![Value::Int(i)])))
                .unwrap();
        }
        let _ = db.all("t").unwrap(); // snapshot at current generation
        db.insert("t", &Faceted::leaf(Some(vec![Value::Int(64)])))
            .unwrap(); // stales it
        let stats = db.decode_cache_stats();
        let obj = db.get("t", 1).unwrap();
        assert!(obj.project(&View::empty()).is_some());
        assert_eq!(
            db.cached_generation("t"),
            Some(db.raw_ref().generation("t").unwrap()),
            "the get advanced the slot"
        );
        assert_eq!(
            db.decode_cache_stats().delta_applies,
            stats.delta_applies + 1,
            "the get repaired the snapshot from the insert's delta"
        );
        // The repaired snapshot serves the next all() without a
        // re-decode, and repeated gets ride the object memo.
        let misses = db.decode_cache_stats().misses;
        let all = db.all("t").unwrap();
        assert_eq!(all.len(), 65);
        assert_eq!(db.decode_cache_stats().misses, misses);
        let again = db.get("t", 1).unwrap();
        assert_eq!(again, obj);
        assert_eq!(db.decode_cache_stats().misses, misses);

        // Ablated: the selective get must not pay a full-table decode
        // — the next all() re-decodes (one more miss).
        db.set_delta_maintenance(false);
        db.insert("t", &Faceted::leaf(Some(vec![Value::Int(65)])))
            .unwrap();
        let _ = db.get("t", 1).unwrap();
        let misses = db.decode_cache_stats().misses;
        let _ = db.all("t").unwrap();
        assert_eq!(db.decode_cache_stats().misses, misses + 1);
    }

    #[test]
    fn single_row_insert_into_large_table_is_served_by_delta_repair() {
        // The acceptance pin: a 1-row insert into an n=1024 table
        // followed by all() must be served by delta application (one
        // decoded row), not a full re-decode of all 1024 rows.
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        for i in 0..1024 {
            db.insert("t", &Faceted::leaf(Some(vec![Value::Int(i)])))
                .unwrap();
        }
        let _ = db.all("t").unwrap();
        let stats = db.decode_cache_stats();
        db.insert("t", &Faceted::leaf(Some(vec![Value::Int(1024)])))
            .unwrap();
        let all = db.all("t").unwrap();
        assert_eq!(all.len(), 1025);
        let after = db.decode_cache_stats();
        assert_eq!(after.misses, stats.misses, "no full re-decode");
        assert_eq!(after.delta_applies, stats.delta_applies + 1);
        assert_eq!(after.hits, stats.hits + 1, "served as a cache hit");
    }

    #[test]
    fn overflowed_journal_window_falls_back_to_full_decode() {
        // Writes can outrun the journal's bounded window; the slot is
        // then unrepairable and the next read pays a full decode —
        // same rows, just slower. Correctness never depends on
        // retention.
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        for i in 0..4 {
            db.insert("t", &Faceted::leaf(Some(vec![Value::Int(i)])))
                .unwrap();
        }
        let _ = db.all("t").unwrap();
        let stats = db.decode_cache_stats();
        // Far past the journal's row budget (1024).
        for i in 0..1100 {
            db.insert("t", &Faceted::leaf(Some(vec![Value::Int(100 + i)])))
                .unwrap();
        }
        let all = db.all("t").unwrap();
        assert_eq!(all.len(), 1104);
        let after = db.decode_cache_stats();
        assert_eq!(
            after.delta_applies, stats.delta_applies,
            "window slid: no repair"
        );
        assert_eq!(after.misses, stats.misses + 1, "full re-decode instead");
        // The rebuilt snapshot matches a cold decode.
        assert_eq!(db.clone().all("t").unwrap(), all);
    }

    #[test]
    fn delta_repair_evicts_only_touched_object_memos() {
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        let a = db
            .insert("t", &Faceted::leaf(Some(vec![Value::Int(1)])))
            .unwrap();
        let b = db
            .insert("t", &Faceted::leaf(Some(vec![Value::Int(2)])))
            .unwrap();
        let obj_a = db.get("t", a).unwrap(); // memoized
        let _ = db.get("t", b).unwrap(); // memoized
        let _ = db.all("t").unwrap();
        // Rewrite b; a's memo must survive the repair.
        let new_b = Faceted::leaf(Some(vec![Value::Int(20)]));
        db.save("t", b, &new_b, &Branches::new()).unwrap();
        let stats = db.decode_cache_stats();
        let again_a = db.get("t", a).unwrap();
        assert_eq!(again_a, obj_a);
        assert_eq!(
            db.decode_cache_stats().misses,
            stats.misses,
            "untouched object's memo stays warm across the write"
        );
        let again_b = db.get("t", b).unwrap();
        assert_eq!(again_b, new_b, "touched object's memo was evicted");
    }

    #[test]
    fn raw_update_and_delete_repair_through_rewrite_deltas() {
        // Engine-level update/delete through the raw handle produce
        // Rewrite/Remove deltas; the repaired snapshot must equal a
        // cold decode.
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        for i in 0..8 {
            db.insert("t", &Faceted::leaf(Some(vec![Value::Int(i)])))
                .unwrap();
        }
        let _ = db.all("t").unwrap();
        let stats = db.decode_cache_stats();
        db.raw()
            .update(
                "t",
                &Predicate::lt(Operand::col("v"), Operand::lit(3i64)),
                &[("v".to_owned(), Value::Int(-1))],
            )
            .unwrap();
        db.raw()
            .delete("t", &Predicate::eq(Operand::col("v"), Operand::lit(5i64)))
            .unwrap();
        let repaired = db.all("t").unwrap();
        assert_eq!(repaired.len(), 7);
        let after = db.decode_cache_stats();
        assert_eq!(after.misses, stats.misses, "patched, not re-decoded");
        assert_eq!(after.delta_applies, stats.delta_applies + 1);
        assert_eq!(db.clone().all("t").unwrap(), repaired);
    }

    #[test]
    fn drop_and_recreate_does_not_resurrect_cached_rows() {
        // A recreated table restarts its generation counter, so the
        // old snapshot could otherwise look current again once the
        // new table's write count matches the old one.
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Str)])
            .unwrap();
        for s in ["old1", "old2", "old3"] {
            db.insert("t", &Faceted::leaf(Some(vec![Value::from(s)])))
                .unwrap();
        }
        let _ = db.all("t").unwrap(); // cache at generation 3
        db.raw().drop_table("t").unwrap();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Str)])
            .unwrap();
        for s in ["new1", "new2", "new3"] {
            db.insert("t", &Faceted::leaf(Some(vec![Value::from(s)])))
                .unwrap();
        }
        let rows = db.all("t").unwrap();
        let texts: Vec<&str> = rows
            .iter()
            .map(|(_, r)| r.fields[0].as_str().unwrap())
            .collect();
        assert_eq!(texts, vec!["new1", "new2", "new3"]);
    }

    #[test]
    fn restore_revalidates_instead_of_flushing_the_cache() {
        let (mut db, _, _) = event_db();
        db.create_table("other", vec![ColumnDef::new("x", ColumnType::Int)])
            .unwrap();
        db.insert("other", &Faceted::leaf(Some(vec![Value::Int(1)])))
            .unwrap();
        let _ = db.all("event").unwrap();
        let _ = db.all("other").unwrap();
        let snapshot = db.raw_ref().snapshot();
        // Post-checkpoint write stales `other` relative to the
        // snapshot; `event` is untouched.
        db.insert("other", &Faceted::leaf(Some(vec![Value::Int(2)])))
            .unwrap();
        let _ = db.all("other").unwrap(); // cache re-warmed past the snapshot
        let misses_before = db.decode_cache_stats().misses;

        db.restore_database(&snapshot).unwrap();
        assert_eq!(
            db.cached_generation("event"),
            Some(db.raw_ref().generation("event").unwrap()),
            "matching-generation slot survives the restore"
        );
        assert_eq!(
            db.cached_generation("other"),
            None,
            "rolled-back table's slot is dropped"
        );
        let _ = db.all("event").unwrap();
        assert_eq!(
            db.decode_cache_stats().misses,
            misses_before,
            "event is served from the revalidated snapshot"
        );
        let rows = db.all("other").unwrap();
        assert_eq!(rows.len(), 1, "restored state, not the later write");
        assert_eq!(db.decode_cache_stats().misses, misses_before + 1);
    }

    #[test]
    fn meta_export_restore_round_trips_allocation_state() {
        let (db, _, _) = event_db();
        let extra = db.fresh_label("event_policy"); // α-renamed duplicate
        let meta = db.export_meta();
        assert_eq!(meta.labels.len(), 2);
        assert_eq!(meta.next_jid.get("event"), Some(&2));

        let mut fresh = FormDb::new();
        fresh.restore_meta(&meta);
        assert_eq!(
            fresh.labels().name(extra),
            db.labels().name(extra),
            "stored names restore verbatim"
        );
        // Allocation continues past the restored state: no reuse of a
        // persisted index, no jid collision.
        assert_eq!(fresh.fresh_label("next").index(), 2);
        assert_eq!(fresh.reserve_jid("event"), 2);
        // import_label + bump_next_jid are the meta-log replay hooks.
        let replayed = fresh.import_label("replayed.label");
        assert_eq!(replayed.index(), 3);
        assert_eq!(fresh.labels().name(replayed), "replayed.label");
        fresh.bump_next_jid("event", 9);
        assert_eq!(fresh.reserve_jid("event"), 9);
        fresh.bump_next_jid("event", 3); // never regresses
        assert_eq!(fresh.reserve_jid("event"), 10);
    }

    #[test]
    fn object_jids_enumerates_distinct_objects() {
        let (db, _, jid) = event_db();
        assert_eq!(db.object_jids("event").unwrap(), vec![jid]);
        let second = db
            .insert(
                "event",
                &Faceted::leaf(Some(vec![Value::from("x"), Value::from("y")])),
            )
            .unwrap();
        assert_eq!(db.object_jids("event").unwrap(), vec![jid, second]);
    }

    #[test]
    fn prime_object_warms_the_object_layer() {
        let (db, _, jid) = event_db();
        let obj = db.get("event", jid).unwrap();
        let mut fresh = FormDb::new();
        fresh
            .create_table(
                "event",
                vec![
                    ColumnDef::new("name", ColumnType::Str),
                    ColumnDef::new("location", ColumnType::Str),
                ],
            )
            .unwrap();
        fresh.restore_database(&db.raw_ref().snapshot()).unwrap();
        fresh.prime_object("event", jid, &obj).unwrap();
        let misses = fresh.decode_cache_stats().misses;
        let got = fresh.get("event", jid).unwrap();
        assert_eq!(got, obj);
        assert_eq!(
            fresh.decode_cache_stats().misses,
            misses,
            "primed object served without a decode"
        );
    }

    #[test]
    fn attached_wal_captures_marshalled_rows() {
        let path = std::env::temp_dir().join(format!("form_wal_test_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (mut db, k, jid) = event_db();
        let baseline = db.raw_ref().snapshot();
        db.attach_wal(std::sync::Arc::new(microdb::WriteLog::open(&path).unwrap()));
        // A guarded save = delete + re-inserted facet rows, logged as
        // ONE atomic batch record so a failed append can never leave
        // a torn object in the log.
        let pc = faceted::Branches::new().with(faceted::Branch::pos(k));
        db.save(
            "event",
            jid,
            &Faceted::leaf(Some(vec![Value::from("new"), Value::from("spot")])),
            &pc,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "one record for the whole save");
        assert!(text.starts_with("bat "), "batch record kind");

        let mut restored = microdb::Database::new();
        restored.restore(&baseline).unwrap();
        let stats = microdb::WriteLog::replay(&path, &mut restored).unwrap();
        assert_eq!(stats.applied, 1, "the batch replays as a unit");
        assert_eq!(
            restored.table("event").unwrap().rows(),
            db.raw_ref().table("event").unwrap().rows()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_wal_append_rolls_back_the_whole_save() {
        use microdb::faults::{self, FaultKind, FaultPoint};
        let path = std::env::temp_dir().join(format!("form_walfault_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (mut db, k, jid) = event_db();
        db.attach_wal(std::sync::Arc::new(microdb::WriteLog::open(&path).unwrap()));
        let before = db.get("event", jid).unwrap();
        let rows_before = db.raw_ref().table("event").unwrap().rows().to_vec();

        faults::arm_at(FaultPoint::WalAppend, 0, FaultKind::Error, "form_walfault");
        let pc = faceted::Branches::new().with(faceted::Branch::pos(k));
        let err = db
            .save(
                "event",
                jid,
                &Faceted::leaf(Some(vec![Value::from("lost"), Value::from("write")])),
                &pc,
            )
            .unwrap_err();
        assert!(format!("{err}").contains("injected"), "{err}");

        // The failed save is invisible: the old rows are intact in
        // memory (the delete rolled back too) and the log is empty.
        assert_eq!(
            db.raw_ref().table("event").unwrap().rows(),
            rows_before.as_slice()
        );
        assert_eq!(db.get("event", jid).unwrap(), before);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);

        // The store keeps working: a retry (fault now spent) lands.
        db.save(
            "event",
            jid,
            &Faceted::leaf(Some(vec![Value::from("second"), Value::from("try")])),
            &pc,
        )
        .unwrap();
        assert_ne!(db.get("event", jid).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn raw_writes_invalidate_through_generations() {
        let (mut db, _, _) = event_db();
        let before = db.all("event").unwrap();
        assert_eq!(before.len(), 2);
        db.raw()
            .insert(
                "event",
                vec![
                    Value::from("late"),
                    Value::from("row"),
                    Value::Int(77),
                    Value::from(""),
                ],
            )
            .unwrap();
        let after = db.all("event").unwrap();
        assert_eq!(after.len(), 3, "raw write visible despite the cache");
    }

    #[test]
    fn jid_order_tracks_first_appearance_and_in_place_save_keeps_it() {
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        let jids: Vec<i64> = (0..4)
            .map(|i| {
                db.insert("t", &Faceted::leaf(Some(vec![Value::Int(i)])))
                    .unwrap()
            })
            .collect();
        assert_eq!(db.jid_order("t").unwrap(), jids);
        // A structure-preserving `save` overwrites rows where they
        // sit: the object keeps its slot in first-appearance order
        // and the table's tail never shifts.
        db.save(
            "t",
            jids[1],
            &Faceted::leaf(Some(vec![Value::Int(99)])),
            &Branches::new(),
        )
        .unwrap();
        assert_eq!(db.jid_order("t").unwrap(), jids, "in-place save");
        let view = faceted::View::empty();
        let got = db.get("t", jids[1]).unwrap().project(&view).clone();
        assert_eq!(got, Some(vec![Value::Int(99)]), "the write landed");
        // A guard-structure change (a policy label appears) falls
        // back to delete + re-insert: the object's rows — and its
        // slot in first-appearance order — move to the end.
        let k = db.fresh_label("late_policy");
        db.save(
            "t",
            jids[1],
            &Faceted::split(
                k,
                Faceted::leaf(Some(vec![Value::Int(100)])),
                Faceted::leaf(Some(vec![Value::Int(-1)])),
            ),
            &Branches::new(),
        )
        .unwrap();
        assert_eq!(
            db.jid_order("t").unwrap(),
            vec![jids[0], jids[2], jids[3], jids[1]]
        );
        let mut ascending = db.object_jids("t").unwrap();
        ascending.sort_unstable();
        assert_eq!(
            db.object_jids("t").unwrap(),
            ascending,
            "object_jids stays sorted"
        );
    }

    #[test]
    fn touched_jids_since_reports_append_rewrite_and_remove() {
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        let a = db
            .insert("t", &Faceted::leaf(Some(vec![Value::Int(1)])))
            .unwrap();
        let b = db
            .insert("t", &Faceted::leaf(Some(vec![Value::Int(2)])))
            .unwrap();
        let g0 = db.raw_ref().generation("t").unwrap();
        assert_eq!(
            db.touched_jids_since("t", g0).unwrap(),
            Some(Vec::new()),
            "nothing written since g0"
        );
        // A save is delete + re-insert: Remove + Append deltas, one jid.
        db.save(
            "t",
            b,
            &Faceted::leaf(Some(vec![Value::Int(20)])),
            &Branches::new(),
        )
        .unwrap();
        assert_eq!(db.touched_jids_since("t", g0).unwrap(), Some(vec![b]));
        // An engine-level update produces Rewrite deltas; both old and
        // new rows name the same jid here.
        db.raw()
            .update(
                "t",
                &Predicate::eq(Operand::col("v"), Operand::lit(1i64)),
                &[("v".to_owned(), Value::Int(-1))],
            )
            .unwrap();
        assert_eq!(db.touched_jids_since("t", g0).unwrap(), Some(vec![a, b]));
    }

    #[test]
    fn touched_jids_since_refuses_slid_windows_and_future_stamps() {
        let mut db = FormDb::new();
        db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
            .unwrap();
        db.insert("t", &Faceted::leaf(Some(vec![Value::Int(0)])))
            .unwrap();
        let g = db.raw_ref().generation("t").unwrap();
        assert_eq!(
            db.touched_jids_since("t", g + 1).unwrap(),
            None,
            "a stamp from the future (restore to an older checkpoint) must fall back"
        );
        // Push the journal past its row budget (1024 rows); the
        // window slides off g.
        for i in 0..1100i64 {
            db.insert("t", &Faceted::leaf(Some(vec![Value::Int(i)])))
                .unwrap();
        }
        assert_eq!(
            db.touched_jids_since("t", g).unwrap(),
            None,
            "a slid-past window must fall back"
        );
    }
}
