//! FORM metadata serialization: the state that lives *outside* the
//! relational engine but is required to reopen a faceted database.
//!
//! The physical rows (with their `jid`/`jvars` meta columns) are
//! captured by [`microdb::Snapshot`]; what they do **not** capture is
//! the FORM's own bookkeeping:
//!
//! * the **label registry** — `jvars` stores only label *indices*, so
//!   a restored process that re-allocated labels from zero would
//!   alias fresh labels onto persisted guards (a policy-integrity
//!   disaster). The registry's stored names are persisted in
//!   allocation order and restored verbatim, so post-restore
//!   allocation continues exactly where the exporting process
//!   stopped;
//! * the **per-table `jid` cursors** — logical object ids must not be
//!   reused either.
//!
//! Both fit in a tiny line-oriented text block ([`FormMeta`]),
//! written into the checkpoint next to the database snapshot.

use std::collections::BTreeMap;

use microdb::snapshot::{escape_token, unescape_token};

use crate::error::{FormError, FormResult};

/// The FORM's serializable metadata.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FormMeta {
    /// Label registry stored names, in allocation order.
    pub labels: Vec<String>,
    /// Per-table next logical object id.
    pub next_jid: BTreeMap<String, i64>,
}

impl FormMeta {
    /// Renders the metadata block.
    ///
    /// ```text
    /// form-meta v1 <n-labels> <n-jid-cursors>
    /// l <stored-name>
    /// j <next-jid> <table>
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "form-meta v1 {} {}",
            self.labels.len(),
            self.next_jid.len()
        );
        for name in &self.labels {
            let _ = writeln!(out, "l {}", escape_token(name));
        }
        for (table, next) in &self.next_jid {
            let _ = writeln!(out, "j {next} {}", escape_token(table));
        }
        out
    }

    /// Parses a block produced by [`FormMeta::to_text`].
    ///
    /// # Errors
    ///
    /// [`FormError::Db`] (as a persistence error) on malformed input.
    pub fn from_text(text: &str) -> FormResult<FormMeta> {
        FormMeta::from_lines(&mut text.lines())
    }

    /// Parses the block from a line iterator, consuming exactly its
    /// own lines (the header declares the counts) — the checkpoint
    /// reader embeds this section inside a larger file.
    ///
    /// # Errors
    ///
    /// Same as [`FormMeta::from_text`].
    pub fn from_lines<'a>(lines: &mut impl Iterator<Item = &'a str>) -> FormResult<FormMeta> {
        let bad = |what: &str| FormError::Db(microdb::DbError::Persist(what.to_owned()));
        let header = lines.next().ok_or_else(|| bad("empty form-meta"))?;
        let (n_labels, n_jids) = header
            .strip_prefix("form-meta v1 ")
            .and_then(|rest| rest.split_once(' '))
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .ok_or_else(|| bad("bad form-meta header"))?;
        let mut meta = FormMeta::default();
        for _ in 0..n_labels {
            let line = lines.next().ok_or_else(|| bad("truncated labels"))?;
            let name = line
                .strip_prefix("l ")
                .ok_or_else(|| bad("expected a label line"))?;
            meta.labels.push(unescape_token(name)?);
        }
        for _ in 0..n_jids {
            let line = lines.next().ok_or_else(|| bad("truncated jid cursors"))?;
            let rest = line
                .strip_prefix("j ")
                .ok_or_else(|| bad("expected a jid line"))?;
            let (next, table) = rest
                .split_once(' ')
                .ok_or_else(|| bad("bad jid cursor line"))?;
            let next: i64 = next.parse().map_err(|_| bad("bad jid cursor value"))?;
            meta.next_jid.insert(unescape_token(table)?, next);
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        let mut meta = FormMeta {
            labels: vec![
                "conf.restrict_email".into(),
                "with space".into(),
                "α-renamed'2".into(),
            ],
            next_jid: BTreeMap::new(),
        };
        meta.next_jid.insert("paper".into(), 42);
        meta.next_jid.insert("user profile".into(), 7);
        let text = meta.to_text();
        assert_eq!(FormMeta::from_text(&text).unwrap(), meta);
    }

    #[test]
    fn empty_meta_round_trips() {
        let meta = FormMeta::default();
        assert_eq!(FormMeta::from_text(&meta.to_text()).unwrap(), meta);
    }

    #[test]
    fn malformed_meta_is_rejected() {
        for bad in [
            "",
            "form-meta v2 0 0",
            "form-meta v1 1 0",
            "form-meta v1 0 1\nj x t",
            "form-meta v1 1 0\nj 1 t",
        ] {
            assert!(FormMeta::from_text(bad).is_err(), "{bad:?}");
        }
    }
}
