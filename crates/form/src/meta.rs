//! Meta-data columns: `jid` and `jvars` (§3.1 of the paper).
//!
//! Each faceted row maps to multiple physical database rows sharing a
//! `jid` (the logical object id) and distinguished by `jvars`, a
//! textual encoding of the branch set such as `"k1=True,k2=False"`.
//! Foreign keys reference `jid`, not the physical primary key
//! (Table 2).

use faceted::{Branch, Branches, Label};

use crate::error::{FormError, FormResult};

/// Name of the logical-object-id meta column.
pub const JID: &str = "jid";
/// Name of the facet-guard meta column.
pub const JVARS: &str = "jvars";

/// Encodes a branch set as the paper's `jvars` string:
/// `"k1=True,k2=False"`, labels in id order; the empty guard encodes
/// as `""`.
///
/// # Examples
///
/// ```
/// use faceted::{Branch, Branches, Label};
/// use form::encode_jvars;
///
/// let k = Label::from_index(3);
/// let b = Branches::new().with(Branch::pos(k));
/// assert_eq!(encode_jvars(&b), "k3=True");
/// ```
#[must_use]
pub fn encode_jvars(guard: &Branches) -> String {
    let mut parts: Vec<String> = guard
        .iter()
        .map(|b| {
            format!(
                "k{}={}",
                b.label().index(),
                if b.is_positive() { "True" } else { "False" }
            )
        })
        .collect();
    parts.sort();
    parts.join(",")
}

/// Parses a `jvars` string back into a branch set.
///
/// # Errors
///
/// [`FormError::BadJvars`] on any malformed entry.
pub fn parse_jvars(s: &str) -> FormResult<Branches> {
    let mut out = Branches::new();
    if s.is_empty() {
        return Ok(out);
    }
    for part in s.split(',') {
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| FormError::BadJvars(s.to_owned()))?;
        let index: u32 = name
            .strip_prefix('k')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| FormError::BadJvars(s.to_owned()))?;
        let label = Label::from_index(index);
        let branch = match value {
            "True" => Branch::pos(label),
            "False" => Branch::neg(label),
            _ => return Err(FormError::BadJvars(s.to_owned())),
        };
        out.insert(branch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    #[test]
    fn round_trip() {
        let b = Branches::from_iter([Branch::pos(k(1)), Branch::neg(k(2))]);
        let s = encode_jvars(&b);
        assert_eq!(s, "k1=True,k2=False");
        assert_eq!(parse_jvars(&s).unwrap(), b);
    }

    #[test]
    fn empty_guard() {
        assert_eq!(encode_jvars(&Branches::new()), "");
        assert_eq!(parse_jvars("").unwrap(), Branches::new());
    }

    #[test]
    fn paper_single_label_example() {
        // Table 1 stores "k=True" / "k=False" (we render k's id).
        let pos = Branches::new().with(Branch::pos(k(0)));
        assert_eq!(encode_jvars(&pos), "k0=True");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in ["k1", "x1=True", "k1=Yes", "k=True", "k1=True,,", "=True"] {
            assert!(parse_jvars(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn ordering_is_canonical() {
        let b = Branches::from_iter([Branch::neg(k(10)), Branch::pos(k(2))]);
        // k10 sorts after k2 numerically in label order but the encoded
        // string is sorted lexically for determinism; parsing is
        // insensitive to order either way.
        let s = encode_jvars(&b);
        assert_eq!(parse_jvars(&s).unwrap(), b);
    }
}
