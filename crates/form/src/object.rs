//! Logical objects: reconstruction of facet structure from guarded
//! physical rows, and flattening back.

use faceted::{Branches, Faceted, Label};
use microdb::{Row, Value};

use crate::error::{FormError, FormResult};

/// One physical row of a logical object, with its parsed guard. The
/// `fields` exclude the meta columns.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardedRow {
    /// Logical object id.
    pub jid: i64,
    /// Which views see this row (parsed `jvars`).
    pub guard: Branches,
    /// The user-visible columns.
    pub fields: Row,
}

/// A reconstructed logical object: its facet tree over field rows.
/// `None` leaves mean "absent for these views" (an object can exist
/// for some viewers only, e.g. after a guarded delete).
pub type FacetedObject = Faceted<Option<Row>>;

/// Rebuilds the facet tree of one logical object from its guarded
/// rows (the unmarshalling step of §3.1).
///
/// # Errors
///
/// [`FormError::FacetConflict`] if two rows are visible to the same
/// view — the stored facets are ambiguous.
pub fn rebuild_object(jid: i64, rows: &[(Branches, Row)]) -> FormResult<FacetedObject> {
    // Drop internally contradictory guards: no view can see them.
    let live: Vec<(Branches, Row)> = rows
        .iter()
        .filter(|(g, _)| g.is_consistent())
        .cloned()
        .collect();
    rebuild(jid, &live)
}

fn rebuild(jid: i64, rows: &[(Branches, Row)]) -> FormResult<FacetedObject> {
    if rows.is_empty() {
        return Ok(Faceted::leaf(None));
    }
    // Pick the smallest label mentioned by any guard.
    let label: Option<Label> = rows.iter().flat_map(|(g, _)| g.labels()).min();
    let Some(k) = label else {
        if rows.len() > 1 {
            return Err(FormError::FacetConflict { jid });
        }
        return Ok(Faceted::leaf(Some(rows[0].1.clone())));
    };
    let side = |polarity: bool| -> Vec<(Branches, Row)> {
        rows.iter()
            .filter(|(g, _)| g.polarity_of(k) != Some(!polarity))
            .map(|(g, r)| {
                let stripped: Branches = g.iter().filter(|b| b.label() != k).collect();
                (stripped, r.clone())
            })
            .collect()
    };
    let high = rebuild(jid, &side(true))?;
    let low = rebuild(jid, &side(false))?;
    Ok(Faceted::split(k, high, low))
}

/// Flattens a facet tree back into guarded rows (the marshalling
/// step): one physical row per reachable `Some` leaf, guarded by the
/// path that reaches it.
#[must_use]
pub fn flatten_object(obj: &FacetedObject) -> Vec<(Branches, Row)> {
    obj.leaves()
        .into_iter()
        .filter_map(|(guard, leaf)| leaf.clone().map(|row| (guard, row)))
        .collect()
}

/// Projects one field of a faceted object (absent objects yield
/// `Value::Null`).
#[must_use]
pub fn object_field(obj: &FacetedObject, index: usize) -> Faceted<Value> {
    obj.map(&mut |row| match row {
        Some(r) => r.get(index).cloned().unwrap_or(Value::Null),
        None => Value::Null,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faceted::Branch;

    fn k(i: u32) -> Label {
        Label::from_index(i)
    }

    fn row(s: &str) -> Row {
        vec![Value::from(s)]
    }

    #[test]
    fn single_public_row() {
        let obj = rebuild_object(1, &[(Branches::new(), row("x"))]).unwrap();
        assert_eq!(obj, Faceted::leaf(Some(row("x"))));
    }

    #[test]
    fn paper_table1_two_rows() {
        let rows = vec![
            (
                Branches::new().with(Branch::pos(k(0))),
                row("Carol's party"),
            ),
            (
                Branches::new().with(Branch::neg(k(0))),
                row("Private event"),
            ),
        ];
        let obj = rebuild_object(1, &rows).unwrap();
        assert_eq!(
            obj,
            Faceted::split(
                k(0),
                Faceted::leaf(Some(row("Carol's party"))),
                Faceted::leaf(Some(row("Private event"))),
            )
        );
    }

    #[test]
    fn nested_guards_rebuild() {
        let g = |bs: &[Branch]| Branches::from_iter(bs.iter().copied());
        let rows = vec![
            (g(&[Branch::pos(k(0)), Branch::pos(k(1))]), row("hh")),
            (g(&[Branch::pos(k(0)), Branch::neg(k(1))]), row("hl")),
            (g(&[Branch::neg(k(0))]), row("l")),
        ];
        let obj = rebuild_object(1, &rows).unwrap();
        let round = flatten_object(&obj);
        assert_eq!(round.len(), 3);
        let rebuilt = rebuild_object(1, &round).unwrap();
        assert_eq!(rebuilt, obj);
    }

    #[test]
    fn missing_facet_is_absent() {
        // Only a secret row: public views see no object.
        let rows = vec![(Branches::new().with(Branch::pos(k(0))), row("s"))];
        let obj = rebuild_object(1, &rows).unwrap();
        assert_eq!(
            obj.project(&faceted::View::from_labels([k(0)])),
            &Some(row("s"))
        );
        assert_eq!(obj.project(&faceted::View::empty()), &None);
    }

    #[test]
    fn conflicting_rows_detected() {
        let rows = vec![(Branches::new(), row("a")), (Branches::new(), row("b"))];
        assert_eq!(
            rebuild_object(7, &rows),
            Err(FormError::FacetConflict { jid: 7 })
        );
        // Overlap through partial guards is also a conflict.
        let rows = vec![
            (Branches::new(), row("a")),
            (Branches::new().with(Branch::pos(k(0))), row("b")),
        ];
        assert!(rebuild_object(7, &rows).is_err());
    }

    #[test]
    fn contradictory_guard_rows_ignored() {
        let bad = Branches::from_iter([Branch::pos(k(0)), Branch::neg(k(0))]);
        let rows = vec![(bad, row("ghost")), (Branches::new(), row("real"))];
        let obj = rebuild_object(1, &rows).unwrap();
        assert_eq!(obj, Faceted::leaf(Some(row("real"))));
    }

    #[test]
    fn object_field_handles_absent() {
        let obj = Faceted::split(
            k(0),
            Faceted::leaf(Some(vec![Value::Int(5)])),
            Faceted::leaf(None),
        );
        let f = object_field(&obj, 0);
        assert_eq!(
            f.project(&faceted::View::from_labels([k(0)])),
            &Value::Int(5)
        );
        assert_eq!(f.project(&faceted::View::empty()), &Value::Null);
    }
}
