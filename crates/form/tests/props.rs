//! Property tests: marshal/unmarshal round-trips, query/projection
//! commutation, guarded-save semantics, pruning equivalence.

use faceted::{Branch, Branches, Faceted, Label, View};
use form::{encode_jvars, parse_jvars, FacetedObject, FormDb};
use microdb::{ColumnDef, ColumnType, SortOrder, Value};
use proptest::prelude::*;

const LABELS: u32 = 3;

fn arb_label() -> impl Strategy<Value = Label> {
    (0..LABELS).prop_map(Label::from_index)
}

fn arb_branch() -> impl Strategy<Value = Branch> {
    (arb_label(), any::<bool>()).prop_map(|(l, p)| if p { Branch::pos(l) } else { Branch::neg(l) })
}

fn arb_branches() -> impl Strategy<Value = Branches> {
    proptest::collection::vec(arb_branch(), 0..3).prop_map(Branches::from_iter)
}

fn all_views() -> Vec<View> {
    (0..(1u32 << LABELS))
        .map(|bits| {
            View::from_labels(
                (0..LABELS)
                    .filter(|i| bits & (1 << i) != 0)
                    .map(Label::from_index),
            )
        })
        .collect()
}

/// An arbitrary one-column faceted object (possibly absent in some
/// facets).
fn arb_object(depth: u32) -> impl Strategy<Value = FacetedObject> {
    let leaf = prop_oneof![
        3 => (0i64..6).prop_map(|v| Faceted::leaf(Some(vec![Value::Int(v)]))),
        1 => Just(Faceted::leaf(None)),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        (arb_label(), inner.clone(), inner).prop_map(|(l, h, w)| Faceted::split(l, h, w))
    })
}

fn fresh_db() -> FormDb {
    let mut db = FormDb::new();
    db.create_table("t", vec![ColumnDef::new("v", ColumnType::Int)])
        .unwrap();
    for i in 0..LABELS {
        let l = db.fresh_label(&format!("k{i}"));
        assert_eq!(l.index(), i);
    }
    db
}

proptest! {
    /// jvars encoding round-trips arbitrary guards.
    #[test]
    fn jvars_round_trip(b in arb_branches()) {
        prop_assert_eq!(parse_jvars(&encode_jvars(&b)).unwrap(), b);
    }

    /// insert ∘ get = identity on canonical objects, for every view.
    #[test]
    fn marshal_unmarshal_round_trip(obj in arb_object(3)) {
        let db = fresh_db();
        let jid = db.insert("t", &obj).unwrap();
        // Fully-absent objects store zero rows and read back as "no
        // such object" — equivalent to the all-None tree.
        match db.get("t", jid) {
            Ok(read) => {
                for view in all_views() {
                    prop_assert_eq!(
                        read.project(&view),
                        obj.project(&view),
                        "view {:?}", view
                    );
                }
            }
            Err(form::FormError::NoSuchObject { .. }) => {
                for view in all_views() {
                    prop_assert_eq!(obj.project(&view), &None);
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Faceted filter commutes with projection: what a view sees in
    /// the faceted query result equals filtering what the view sees.
    #[test]
    fn filter_commutes_with_projection(
        objs in proptest::collection::vec(arb_object(2), 1..6),
        needle in 0i64..6,
    ) {
        let db = fresh_db();
        for o in &objs {
            db.insert("t", o).unwrap();
        }
        let result = db.filter_eq("t", "v", Value::Int(needle)).unwrap();
        for view in all_views() {
            let mut got: Vec<i64> = result
                .project(&view)
                .into_iter()
                .map(|g| g.fields[0].as_int().unwrap())
                .collect();
            got.sort_unstable();
            let mut expected: Vec<i64> = objs
                .iter()
                .filter_map(|o| o.project(&view).clone())
                .map(|r| r[0].as_int().unwrap())
                .filter(|v| *v == needle)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "view {:?}", view);
        }
    }

    /// ORDER BY commutes with projection (the §3.1.1 sorting claim).
    #[test]
    fn order_by_commutes_with_projection(
        objs in proptest::collection::vec(arb_object(2), 1..6),
    ) {
        let db = fresh_db();
        for o in &objs {
            db.insert("t", o).unwrap();
        }
        let sorted = db.order_by("t", "v", SortOrder::Asc).unwrap();
        for view in all_views() {
            let got: Vec<i64> = sorted
                .project(&view)
                .into_iter()
                .map(|g| g.fields[0].as_int().unwrap())
                .collect();
            let mut expected: Vec<i64> = objs
                .iter()
                .filter_map(|o| o.project(&view).clone())
                .map(|r| r[0].as_int().unwrap())
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(got, expected, "view {:?}", view);
        }
    }

    /// Guarded save: views satisfying pc see the new object, others
    /// keep the old one — exactly ⟨⟨pc ? new : old⟩⟩.
    #[test]
    fn guarded_save_semantics(old in arb_object(2), new in arb_object(2), pc in arb_branches()) {
        prop_assume!(pc.is_consistent());
        let db = fresh_db();
        let jid = db.insert("t", &old).unwrap();
        db.save("t", jid, &new, &pc).unwrap();
        match db.get("t", jid) {
            Ok(merged) => {
                for view in all_views() {
                    let expected = if pc.visible_to(&view) {
                        new.project(&view)
                    } else {
                        old.project(&view)
                    };
                    prop_assert_eq!(merged.project(&view), expected, "view {:?}", view);
                }
            }
            Err(form::FormError::NoSuchObject { .. }) => {
                for view in all_views() {
                    let expected = if pc.visible_to(&view) {
                        new.project(&view)
                    } else {
                        old.project(&view)
                    };
                    prop_assert_eq!(&None, expected, "view {:?}", view);
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Early Pruning never changes what a consistent viewer sees.
    #[test]
    fn pruning_preserves_consistent_views(
        objs in proptest::collection::vec(arb_object(2), 1..5),
        constraint in arb_branches(),
    ) {
        prop_assume!(constraint.is_consistent());
        let plain = fresh_db();
        let mut pruned = fresh_db();
        for o in &objs {
            plain.insert("t", o).unwrap();
            pruned.insert("t", o).unwrap();
        }
        pruned.set_pruning(Some(constraint.clone()));
        let a = plain.all("t").unwrap();
        let b = pruned.all("t").unwrap();
        prop_assert!(b.len() <= a.len());
        for view in all_views() {
            if !constraint.visible_to(&view) {
                continue;
            }
            let mut va: Vec<i64> = a.project(&view).iter().map(|g| g.fields[0].as_int().unwrap()).collect();
            let mut vb: Vec<i64> = b.project(&view).iter().map(|g| g.fields[0].as_int().unwrap()).collect();
            va.sort_unstable();
            vb.sort_unstable();
            prop_assert_eq!(va, vb, "view {:?}", view);
        }
    }

    /// Decode-cache invalidation contract: every write to a table
    /// bumps that table's generation and stales exactly *its* cached
    /// snapshot — a cached snapshot of any other table stays valid
    /// across the whole write sequence. Runs with delta maintenance
    /// ablated: the re-decode counting below pins the *fallback*
    /// behavior (the delta-repaired path is pinned by
    /// `delta_maintenance_matches_cold_decode`).
    #[test]
    fn writes_bump_generation_and_invalidate_only_written_table(
        objs in proptest::collection::vec(arb_object(2), 1..4),
        ops in proptest::collection::vec((any::<bool>(), 0u8..3, arb_object(1), arb_branches()), 1..8),
    ) {
        let mut db = fresh_db();
        db.set_delta_maintenance(false);
        db.create_table("u", vec![ColumnDef::new("v", ColumnType::Int)]).unwrap();
        for o in &objs {
            db.insert("t", o).unwrap();
            db.insert("u", o).unwrap();
        }
        // Warm both snapshots.
        let _ = db.all("t").unwrap();
        let _ = db.all("u").unwrap();
        for (to_u, op, obj, pc) in &ops {
            let (target, other) = if *to_u { ("u", "t") } else { ("t", "u") };
            let gen_before = db.raw_ref().generation(target).unwrap();
            let other_cached = db.cached_generation(other);
            // Inserting an everywhere-absent object stores zero rows
            // (a storage-level no-op), and an inconsistent pc never
            // reaches the engine — substitute writes that really land.
            let obj = if form::flatten_object(obj).is_empty() {
                Faceted::leaf(Some(vec![Value::Int(0)]))
            } else {
                obj.clone()
            };
            let pc = if pc.is_consistent() {
                pc.clone()
            } else {
                Branches::new()
            };
            let wrote = match op {
                0 => db.insert(target, &obj).map(|_| true),
                1 => db.save(target, 1, &obj, &pc).map(|_| true),
                _ => db.delete(target, 1, &pc).map(|_| true),
            };
            prop_assert!(wrote.is_ok());
            // A write that changed rows bumps the generation; a
            // vacuous one (e.g. deleting an already-absent object)
            // must NOT — that's the no-op-write fix.
            let bumped = db.raw_ref().generation(target).unwrap() > gen_before;
            if *op == 0 {
                prop_assert!(bumped, "inserts always change rows");
            }
            prop_assert_eq!(
                db.cached_generation(other), other_cached,
                "writes must not touch the other table's snapshot"
            );
            // The stale snapshot is refreshed on next access and the
            // untouched one still hits.
            let misses_before = db.decode_cache_stats().misses;
            let _ = db.all(other).unwrap();
            prop_assert_eq!(db.decode_cache_stats().misses, misses_before,
                "reading the unwritten table is still a cache hit");
            let _ = db.all(target).unwrap();
            if bumped {
                prop_assert_eq!(db.decode_cache_stats().misses, misses_before + 1,
                    "reading the written table re-decodes once");
            } else {
                prop_assert_eq!(db.decode_cache_stats().misses, misses_before,
                    "a no-op write must not evict the warm snapshot");
            }
        }
    }

    /// The delta/full-decode equivalence oracle: for any interleaving
    /// of journal deltas (inserts, guarded saves, guarded deletes),
    /// the delta-repaired snapshot is row-identical to (a) the same
    /// op stream with delta maintenance ablated, and (b) a cold full
    /// decode at the same generation.
    #[test]
    fn delta_maintenance_matches_cold_decode(
        objs in proptest::collection::vec(arb_object(2), 1..4),
        ops in proptest::collection::vec((0u8..3, 1i64..6, arb_object(1), arb_branches()), 1..10),
    ) {
        let on = fresh_db();
        let mut off = fresh_db();
        off.set_delta_maintenance(false);
        for o in &objs {
            on.insert("t", o).unwrap();
            off.insert("t", o).unwrap();
        }
        // Warm the snapshots the delta stream will repair.
        let _ = on.all("t").unwrap();
        let _ = off.all("t").unwrap();
        let warmed_at = on.raw_ref().generation("t").unwrap();
        for (op, jid, obj, pc) in &ops {
            // Substitutions as above: writes that really land.
            let obj = if form::flatten_object(obj).is_empty() {
                Faceted::leaf(Some(vec![Value::Int(0)]))
            } else {
                obj.clone()
            };
            let pc = if pc.is_consistent() { pc.clone() } else { Branches::new() };
            // Saves/deletes of mangled objects can legitimately fail
            // (e.g. FacetConflict on an ambiguous merge): both sides
            // must then fail identically, mutating nothing.
            match op {
                0 => {
                    on.insert("t", &obj).unwrap();
                    off.insert("t", &obj).unwrap();
                }
                1 => {
                    let a = on.save("t", *jid, &obj, &pc);
                    let b = off.save("t", *jid, &obj, &pc);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
                _ => {
                    let a = on.delete("t", *jid, &pc);
                    let b = off.delete("t", *jid, &pc);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
            }
            let repaired = on.all("t").unwrap();
            prop_assert_eq!(&repaired, &off.all("t").unwrap());
            // A clone starts with a cold cache: its first read is a
            // full decode of the raw rows at the same generation.
            let cold = on.clone();
            prop_assert_eq!(&repaired, &cold.all("t").unwrap());
        }
        // Every op stream that actually changed rows must have gone
        // through the delta path (the table is far below the journal
        // budget, so the window always covers).
        if on.raw_ref().generation("t").unwrap() > warmed_at {
            prop_assert!(
                on.decode_cache_stats().delta_applies >= 1,
                "the op stream exercised the delta path"
            );
        }
    }

    /// Cached and cache-disabled queries are byte-identical across
    /// arbitrary data, for every query shape the FORM offers.
    #[test]
    fn cached_and_uncached_queries_agree(
        objs in proptest::collection::vec(arb_object(2), 1..5),
        needle in 0i64..6,
    ) {
        let cached = fresh_db();
        let mut uncached = fresh_db();
        uncached.set_decode_cache(false);
        for o in &objs {
            cached.insert("t", o).unwrap();
            uncached.insert("t", o).unwrap();
        }
        prop_assert_eq!(cached.all("t").unwrap(), uncached.all("t").unwrap());
        // Query twice so the second cached run is a guaranteed hit.
        prop_assert_eq!(cached.all("t").unwrap(), uncached.all("t").unwrap());
        prop_assert_eq!(
            cached.filter_eq("t", "v", Value::Int(needle)).unwrap(),
            uncached.filter_eq("t", "v", Value::Int(needle)).unwrap()
        );
        prop_assert_eq!(
            cached.order_by("t", "v", SortOrder::Asc).unwrap(),
            uncached.order_by("t", "v", SortOrder::Asc).unwrap()
        );
        for jid in 1..=objs.len() as i64 {
            let a = cached.get("t", jid);
            let b = uncached.get("t", jid);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(form::FormError::NoSuchObject{..}), Err(form::FormError::NoSuchObject{..})) => {}
                (a, b) => return Err(TestCaseError::fail(format!("{a:?} vs {b:?}"))),
            }
        }
        prop_assert!(cached.decode_cache_stats().hits >= 1);
        prop_assert_eq!(uncached.decode_cache_stats().hits, 0);
    }

    /// Faceted count equals per-view counting.
    #[test]
    fn count_commutes_with_projection(objs in proptest::collection::vec(arb_object(2), 0..5)) {
        let db = fresh_db();
        for o in &objs {
            db.insert("t", o).unwrap();
        }
        let rows = db.all("t").unwrap();
        let count = form::faceted_count(&rows);
        for view in all_views() {
            let expected = objs.iter().filter(|o| o.project(&view).is_some()).count() as i64;
            prop_assert_eq!(*count.project(&view), expected, "view {:?}", view);
        }
    }
}
