//! Seeded chaos scenarios over the persistence + degradation stack.
//!
//! A chaos run drives randomized-but-reproducible interleavings of
//! writes, checkpoints, kills, restores and injected storage faults
//! over the three case-study applications, checking the robustness
//! invariants after every recovery:
//!
//! * **Grid identity** — the all-pages × all-viewers differential
//!   grid rendered after a kill + restore is byte-identical to the
//!   grid rendered just before the kill, for every viewer including
//!   the ones each policy denies.
//! * **Exactly-once writes** — every write the service acknowledged
//!   with `200` carries a unique marker string that must appear in
//!   some viewer's page after recovery and never twice in any single
//!   page; every rejected write's marker must appear nowhere.
//! * **Physical footprint** — per-table physical row counts survive
//!   the kill + replay unchanged (the scenarios only issue
//!   row-creating writes, so replay duplicating or dropping a record
//!   shows up as a count drift even where rendering would not).
//! * **Degraded-mode arc** — an injected WAL-append failure must
//!   flip the app to read-only (writes `503 Retry-After`, reads and
//!   `admin/health` keep answering), and a successful
//!   `admin/checkpoint` must clear it.
//! * **Backpressure** — flooding a one-worker executor with a small
//!   queue bound must shed with `503 Retry-After` rather than queue
//!   without limit, and the service must serve normally again once
//!   the flood drains.
//!
//! Determinism: the only randomness is a [`SplitMix64`] stream seeded
//! from the caller, so a failing seed replays exactly (`chaos --seed
//! N`). The fault registry is process-global — callers running
//! several seeds in one process must run them **sequentially** (the
//! `chaos_e2e` test and the `chaos` binary both do).

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use apps::{serve, workload};
use jacqueline::{App, CheckpointPolicy, ExecutorService, Request, Response, Router, Site, Viewer};
use microdb::faults::{self, FaultKind, FaultPoint};

/// Sebastiano Vigna's SplitMix64 — a tiny, well-mixed generator,
/// vendored so scenarios replay bit-for-bit from a seed with no
/// dependency on an external RNG's stream stability.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire future stream is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw from `0..n` (modulo bias is irrelevant at
    /// chaos-mix scales). `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// What one seed's scenarios observed — printed by the `chaos`
/// binary so CI logs show the coverage each pinned seed bought.
#[derive(Default)]
pub struct ChaosReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Scenario steps executed across all three applications.
    pub steps: usize,
    /// Writes the service acknowledged with `200`.
    pub writes_ok: usize,
    /// Writes rejected (injected fault, degraded shed, or policy).
    pub writes_rejected: usize,
    /// Storage faults armed and fired.
    pub faults_injected: usize,
    /// Successful `admin/checkpoint` requests.
    pub checkpoints: usize,
    /// Kill + restore cycles (including faulted first attempts).
    pub kills: usize,
    /// Restores that failed on an injected read fault and succeeded
    /// on retry.
    pub restore_retries: usize,
    /// Full degraded arcs (fault → read-only → checkpoint → healthy).
    pub degraded_arcs: usize,
    /// Requests shed by the bounded executor queue in the flood stage.
    pub sheds: usize,
    /// Grid cells (page × viewer) compared byte-for-byte.
    pub grid_cells_checked: usize,
    /// Render-cache entries repaired in place from the write journal
    /// (accumulated across kills, since each restore starts a fresh
    /// cache).
    pub fragment_repairs: u64,
    /// Checkpoints the executor's record-pressure scheduler ran on
    /// its own (accumulated across kills, like `fragment_repairs`).
    pub scheduled_checkpoints: u64,
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chaos seed {}: {} steps, {} writes ok / {} rejected, \
             {} faults, {} checkpoints (+{} scheduled), {} kills \
             ({} restore retries), {} degraded arcs, {} sheds, \
             {} grid cells verified, {} fragment repairs",
            self.seed,
            self.steps,
            self.writes_ok,
            self.writes_rejected,
            self.faults_injected,
            self.checkpoints,
            self.scheduled_checkpoints,
            self.kills,
            self.restore_retries,
            self.degraded_arcs,
            self.sheds,
            self.grid_cells_checked,
            self.fragment_repairs
        )
    }
}

/// The three served case studies the scenarios rotate over.
#[derive(Copy, Clone, Debug)]
enum AppKind {
    Conference,
    Courses,
    Health,
}

impl AppKind {
    fn name(self) -> &'static str {
        match self {
            AppKind::Conference => "conference",
            AppKind::Courses => "courses",
            AppKind::Health => "health",
        }
    }

    fn build_persistent(self, dir: &Path) -> form::FormResult<Site> {
        match self {
            AppKind::Conference => {
                serve::conference_site_persistent(workload::conference(6, 5).app, dir)
            }
            AppKind::Courses => serve::courses_site_persistent(workload::courses(4).app, dir),
            AppKind::Health => serve::health_site_persistent(workload::health(8).app, dir),
        }
    }

    fn restore(self, dir: &Path) -> form::FormResult<Site> {
        match self {
            AppKind::Conference => serve::conference_site_restored(dir),
            AppKind::Courses => serve::courses_site_restored(dir),
            AppKind::Health => serve::health_site_restored(dir),
        }
    }

    /// Viewers for the differential grid: anonymous plus every jid
    /// that could plausibly be granted or denied something — for the
    /// course manager that range covers the instructors, whose jids
    /// interleave with course/assignment rows.
    fn viewers(self) -> Vec<Viewer> {
        let top = match self {
            AppKind::Conference => 6,
            AppKind::Courses => 13,
            AppKind::Health => 8,
        };
        std::iter::once(Viewer::Anonymous)
            .chain((1..=top).map(Viewer::User))
            .collect()
    }

    fn list_pages(self) -> Vec<String> {
        match self {
            AppKind::Conference => vec!["papers/all".to_owned(), "users/all".to_owned()],
            AppKind::Courses => vec!["courses/all".to_owned(), "courses/all_unpruned".to_owned()],
            AppKind::Health => vec!["records/all".to_owned()],
        }
    }

    /// The object page family + the model whose existing jids seed it.
    fn object_page(self) -> (&'static str, &'static str) {
        match self {
            AppKind::Conference => ("papers/one", "paper"),
            AppKind::Courses => ("submissions/one", "submission"),
            AppKind::Health => ("records/one", "health_record"),
        }
    }

    /// Tables whose physical row counts the replay oracle pins.
    fn tables(self) -> &'static [&'static str] {
        match self {
            AppKind::Conference => &["paper", "review", "user_profile", "conf_state"],
            AppKind::Courses => &["submission", "cuser", "course", "assignment", "enrollment"],
            AppKind::Health => &["waiver", "health_record", "individual"],
        }
    }
}

/// One application under chaos: the live site + service, the page
/// grid it must keep rendering identically, and the write markers
/// whose exactly-once fate the oracles track.
struct Scenario {
    kind: AppKind,
    dir: PathBuf,
    frag: String,
    /// Whether render-cache fragment repair is enabled (the scenario
    /// knob); re-applied after every restore, since a restored app
    /// starts with the default-on cache.
    fragments: bool,
    /// Whether incremental (dirty-chunk-only) checkpoints are enabled
    /// — the `--no-incremental` ablation forces every checkpoint,
    /// scheduled or explicit, down the full-export path. Re-applied
    /// after every restore like `fragments`.
    incremental: bool,
    site: Site,
    service: ExecutorService,
    pages: Vec<String>,
    viewers: Vec<Viewer>,
    /// `(marker, accepted)` for every marker-carrying write issued.
    markers: Vec<(String, bool)>,
    /// Valid write targets (assignment jids / record jids).
    targets: Vec<i64>,
    next_marker: usize,
}

const EXECUTOR_THREADS: usize = 3;
const SCENARIO_QUEUE: usize = 64;
/// The scheduled-checkpoint policy the scenarios run under:
/// record-count-only, so the schedule is a pure function of the WAL
/// stream (a wall-clock term would make the interleaving depend on
/// machine speed and break seed replay).
const SCHEDULE_EVERY_RECORDS: u64 = 3;

fn start_service(site: &Site) -> ExecutorService {
    ExecutorService::start_scheduled(
        Arc::clone(&site.app),
        Arc::clone(&site.router),
        EXECUTOR_THREADS,
        SCENARIO_QUEUE,
        CheckpointPolicy {
            every_records: Some(SCHEDULE_EVERY_RECORDS),
            every: None,
        },
    )
}

fn parse_page(page: &str, viewer: &Viewer) -> Request {
    match page.split_once('?') {
        None => Request::new(page, viewer.clone()),
        Some((path, query)) => {
            let mut request = Request::new(path, viewer.clone());
            for pair in query.split('&') {
                if let Some((k, v)) = pair.split_once('=') {
                    request = request.with_param(k, v);
                }
            }
            request
        }
    }
}

impl Scenario {
    fn start(
        kind: AppKind,
        seed: u64,
        fragments: bool,
        incremental: bool,
    ) -> Result<Scenario, String> {
        let frag = format!("jacq_chaos_s{seed}_{}_{}", kind.name(), std::process::id());
        let dir = std::env::temp_dir().join(&frag);
        let _ = std::fs::remove_dir_all(&dir);
        let site = kind
            .build_persistent(&dir)
            .map_err(|e| format!("{}: building persistent site: {e}", kind.name()))?;
        if !fragments {
            site.app.set_fragment_repair(false);
        }
        if !incremental {
            site.app.set_incremental_checkpoints(false);
        }

        // Discover the seeded object jids by probing — robust against
        // workload jid-allocation changes.
        let (page_family, model) = kind.object_page();
        let mut pages = kind.list_pages();
        let mut targets = Vec::new();
        for jid in 1..=60 {
            if site.app.get(model, jid).is_ok() {
                pages.push(format!("{page_family}?id={jid}"));
            }
            let target_model = match kind {
                AppKind::Conference => "paper",
                AppKind::Courses => "assignment",
                AppKind::Health => "health_record",
            };
            if site.app.get(target_model, jid).is_ok() {
                targets.push(jid);
            }
        }

        let service = start_service(&site);
        Ok(Scenario {
            viewers: kind.viewers(),
            kind,
            dir,
            frag,
            fragments,
            incremental,
            site,
            service,
            pages,
            markers: Vec::new(),
            targets,
            next_marker: 0,
        })
    }

    /// Renders the full differential grid directly through the
    /// router (reads stay legal even in degraded mode).
    fn grid(&self) -> Vec<(String, String, u16, String)> {
        let mut cells = Vec::new();
        for page in &self.pages {
            for viewer in &self.viewers {
                let response = self
                    .site
                    .router
                    .handle(&self.site.app, &parse_page(page, viewer));
                cells.push((
                    page.clone(),
                    format!("{viewer:?}"),
                    response.status,
                    response.body,
                ));
            }
        }
        cells
    }

    fn physical_rows(&self) -> Vec<(&'static str, usize)> {
        self.kind
            .tables()
            .iter()
            .map(|t| (*t, self.site.app.db.physical_rows(t).unwrap_or(0)))
            .collect()
    }

    /// Issues one marker-carrying write through the executor service
    /// and records the marker's accepted/rejected fate. Returns the
    /// response status.
    fn write(&mut self, rng: &mut SplitMix64, report: &mut ChaosReport) -> u16 {
        // The trailing `x` closes the marker so `…-w1x` is never a
        // substring of `…-w10x` when the oracles count occurrences.
        let marker = format!("chaos-{}-w{}x", self.frag, self.next_marker);
        self.next_marker += 1;
        let request = match self.kind {
            AppKind::Conference => {
                let writer = 1 + rng.below(6) as i64;
                Request::new("papers/submit", Viewer::User(writer)).with_param("title", &marker)
            }
            AppKind::Courses => {
                // The seeded student; the submission-text policy shows
                // a submission to its own author unconditionally, so
                // the marker is grid-visible whatever the assignment.
                let target = self.targets[rng.below(self.targets.len() as u64) as usize];
                Request::new("submissions/submit", Viewer::User(1))
                    .with_param("assignment", &target.to_string())
                    .with_param("text", &marker)
            }
            AppKind::Health => {
                // Waivers carry no text field, so health writes are
                // exercised without a marker (the physical-rows and
                // grid oracles still cover them).
                let record = self.targets[rng.below(self.targets.len() as u64) as usize];
                let grantee = 1 + rng.below(8) as i64;
                Request::new("waivers/set", Viewer::User(grantee))
                    .with_param("record", &record.to_string())
                    .with_param("grantee", &grantee.to_string())
            }
        };
        let served = self.service.serve(request);
        let status = served.response.status;
        if status == 200 {
            report.writes_ok += 1;
            if !matches!(self.kind, AppKind::Health) {
                self.markers.push((marker, true));
                // The new object's page joins the grid: its id is the
                // write route's response body.
                if let Ok(jid) = served.response.body.trim().parse::<i64>() {
                    let (family, _) = self.kind.object_page();
                    self.pages.push(format!("{family}?id={jid}"));
                }
            }
        } else {
            report.writes_rejected += 1;
            if !matches!(self.kind, AppKind::Health) {
                self.markers.push((marker, false));
            }
        }
        status
    }

    fn read(&self, rng: &mut SplitMix64) -> u16 {
        let page = &self.pages[rng.below(self.pages.len() as u64) as usize];
        let viewer = &self.viewers[rng.below(self.viewers.len() as u64) as usize];
        self.service.serve(parse_page(page, viewer)).response.status
    }

    fn health(&self) -> Response {
        self.service
            .serve(Request::new("admin/health", Viewer::Anonymous))
            .response
    }

    /// `admin/checkpoint` through the service, retried past one-shot
    /// injected crashes. Errors if it never succeeds.
    fn checkpoint(&self, report: &mut ChaosReport) -> Result<(), String> {
        for _ in 0..3 {
            let response = self
                .service
                .serve(Request::new("admin/checkpoint", Viewer::User(1)))
                .response;
            if response.status == 200 {
                report.checkpoints += 1;
                return Ok(());
            }
            if !response.body.contains("injected") {
                return Err(format!(
                    "{}: checkpoint failed for a non-injected reason: {} {}",
                    self.kind.name(),
                    response.status,
                    response.body
                ));
            }
        }
        Err(format!(
            "{}: checkpoint still failing after retries",
            self.kind.name()
        ))
    }

    /// The full degradation arc: a WAL fault fails one write and
    /// flips read-only; reads and health keep answering; a checkpoint
    /// clears it; a retried write lands.
    fn degraded_arc(
        &mut self,
        rng: &mut SplitMix64,
        report: &mut ChaosReport,
    ) -> Result<(), String> {
        let kind = if rng.chance(50) {
            FaultKind::Error
        } else {
            FaultKind::ShortWrite
        };
        faults::arm_at(FaultPoint::WalAppend, 0, kind, &self.frag);
        let hit = self.write(rng, report);
        if hit == 200 {
            return Err(format!(
                "{}: write succeeded through an armed WAL fault",
                self.kind.name()
            ));
        }
        report.faults_injected += 1;
        if !self.site.app.is_degraded() {
            return Err(format!(
                "{}: WAL failure did not flip degraded mode",
                self.kind.name()
            ));
        }
        let health = self.health();
        if health.status != 503 || !health.body.contains("degraded") {
            return Err(format!(
                "{}: degraded health was {} {:?}",
                self.kind.name(),
                health.status,
                health.body
            ));
        }
        let shed = self.write(rng, report);
        if shed != 503 {
            return Err(format!(
                "{}: degraded write got {shed}, want 503",
                self.kind.name()
            ));
        }
        if self.read(rng) != 200 {
            return Err(format!(
                "{}: reads must keep serving in degraded mode",
                self.kind.name()
            ));
        }
        self.checkpoint(report)?;
        if self.site.app.is_degraded() || self.health().status != 200 {
            return Err(format!(
                "{}: checkpoint did not clear degraded mode",
                self.kind.name()
            ));
        }
        if self.write(rng, report) != 200 {
            return Err(format!(
                "{}: post-recovery write must succeed",
                self.kind.name()
            ));
        }
        // Entries the cache repaired (or warmed) across the arc must
        // still serve the post-recovery truth.
        self.cached_grid_matches_uncached(report)?;
        report.degraded_arcs += 1;
        Ok(())
    }

    /// Arms a crash point inside the checkpoint writer, drives a
    /// checkpoint into it, and requires the retry to succeed.
    fn checkpoint_crash(
        &mut self,
        rng: &mut SplitMix64,
        report: &mut ChaosReport,
    ) -> Result<(), String> {
        let point = if rng.chance(50) {
            FaultPoint::CheckpointPreRename
        } else {
            FaultPoint::CheckpointPostRename
        };
        faults::arm_at(point, 0, FaultKind::Error, &self.frag);
        self.checkpoint(report)?;
        report.faults_injected += 1;
        Ok(())
    }

    /// Kill + restore: shuts the service down, reboots the site from
    /// the checkpoint directory (optionally through an injected
    /// restore-read fault first), and runs every recovery oracle.
    fn kill_and_restore(
        &mut self,
        rng: &mut SplitMix64,
        report: &mut ChaosReport,
    ) -> Result<(), String> {
        let before_grid = self.grid();
        let before_rows = self.physical_rows();
        // The restored app starts a fresh cache and fresh counters:
        // bank this life's repair and scheduled-checkpoint counts
        // before they vanish with the process.
        report.fragment_repairs += self.site.app.render_cache_stats().repairs;
        report.scheduled_checkpoints += self.site.app.scheduled_checkpoint_count();
        self.service.shutdown();
        report.kills += 1;

        if rng.chance(30) {
            faults::arm_at(FaultPoint::RestoreRead, 0, FaultKind::Error, &self.frag);
            match self.kind.restore(&self.dir) {
                Ok(_) => {
                    return Err(format!(
                        "{}: restore succeeded through an armed read fault",
                        self.kind.name()
                    ))
                }
                Err(e) if e.to_string().contains("injected") => {
                    report.faults_injected += 1;
                    report.restore_retries += 1;
                }
                Err(e) => {
                    return Err(format!(
                        "{}: unexpected restore error: {e}",
                        self.kind.name()
                    ))
                }
            }
        }

        self.site = self
            .kind
            .restore(&self.dir)
            .map_err(|e| format!("{}: restore: {e}", self.kind.name()))?;
        if !self.fragments {
            self.site.app.set_fragment_repair(false);
        }
        if !self.incremental {
            self.site.app.set_incremental_checkpoints(false);
        }
        self.service = start_service(&self.site);

        let after_grid = self.grid();
        report.grid_cells_checked += after_grid.len();
        if before_grid.len() != after_grid.len() {
            return Err(format!("{}: grid shape changed", self.kind.name()));
        }
        for (b, a) in before_grid.iter().zip(&after_grid) {
            if b != a {
                return Err(format!(
                    "{}: grid divergence at {} for {}: {} {:?} != {} {:?}",
                    self.kind.name(),
                    b.0,
                    b.1,
                    b.2,
                    b.3,
                    a.2,
                    a.3
                ));
            }
        }
        let after_rows = self.physical_rows();
        if before_rows != after_rows {
            return Err(format!(
                "{}: physical rows drifted across restore: {before_rows:?} != {after_rows:?}",
                self.kind.name()
            ));
        }
        self.check_markers(&after_grid)?;
        // The reborn service's *cached* reads must agree with the
        // uncached grid it was just checked against.
        self.cached_grid_matches_uncached(report)?;
        Ok(())
    }

    /// Exactly-once: each accepted marker appears in some grid cell
    /// and never twice in one page; each rejected marker nowhere.
    fn check_markers(&self, grid: &[(String, String, u16, String)]) -> Result<(), String> {
        for (marker, accepted) in &self.markers {
            let mut total = 0usize;
            for (page, viewer, _, body) in grid {
                let n = body.matches(marker.as_str()).count();
                if n > 1 {
                    return Err(format!(
                        "{}: marker {marker} appears {n} times in {page} for {viewer} \
                         (a write applied more than once)",
                        self.kind.name()
                    ));
                }
                total += n;
            }
            if *accepted && total == 0 {
                return Err(format!(
                    "{}: accepted marker {marker} lost after recovery",
                    self.kind.name()
                ));
            }
            if !accepted && total > 0 {
                return Err(format!(
                    "{}: rejected marker {marker} leaked into a page",
                    self.kind.name()
                ));
            }
        }
        Ok(())
    }

    /// Render-cache oracle: every list page for every viewer, served
    /// through the executor (cache consulted — miss, hit, or fragment
    /// repair, whatever state the scenario left) **twice**, each
    /// response compared byte-for-byte against an uncached
    /// `Router::handle` render. The second pass guarantees a stamped
    /// entry exists afterwards, so any later write exercises the
    /// stale path.
    fn cached_grid_matches_uncached(&self, report: &mut ChaosReport) -> Result<(), String> {
        for page in self.kind.list_pages() {
            for viewer in &self.viewers {
                let uncached = self
                    .site
                    .router
                    .handle(&self.site.app, &parse_page(&page, viewer));
                for pass in ["populate", "replay"] {
                    let served = self.service.serve(parse_page(&page, viewer)).response;
                    if served.status != uncached.status || served.body != uncached.body {
                        return Err(format!(
                            "{}: cached serve diverged from the uncached render \
                             at {page} for {viewer:?} ({pass} pass): \
                             {} {:?} != {} {:?}",
                            self.kind.name(),
                            served.status,
                            served.body,
                            uncached.status,
                            uncached.body
                        ));
                    }
                    report.grid_cells_checked += 1;
                }
            }
        }
        Ok(())
    }

    /// Deterministic fragment-repair exercise: warm the first list
    /// page for a logged-in viewer, push one marker write through the
    /// service, and require the next cached serve to agree with an
    /// uncached render byte-for-byte. For the conference app the
    /// write's only moving table *is* the fragment table, so with the
    /// knob on the warm entry must be **repaired** (counter-pinned);
    /// courses writes leave the course page valid (hit path) and
    /// health writes move the non-fragment `waiver` table (refused
    /// repair → invalidation fallback), so those apps pin the
    /// fallback arms of the same contract.
    fn repair_probe(
        &mut self,
        rng: &mut SplitMix64,
        report: &mut ChaosReport,
    ) -> Result<(), String> {
        let page = self.kind.list_pages()[0].clone();
        let viewer = self.viewers[self.viewers.len() - 1].clone();
        for _ in 0..2 {
            let _ = self.service.serve(parse_page(&page, &viewer));
        }
        let repairs_before = self.site.app.render_cache_stats().repairs;
        let status = self.write(rng, report);
        if status != 200 {
            return Err(format!(
                "{}: the repair probe's write got {status}, want 200",
                self.kind.name()
            ));
        }
        let served = self.service.serve(parse_page(&page, &viewer)).response;
        let uncached = self
            .site
            .router
            .handle(&self.site.app, &parse_page(&page, &viewer));
        if served.status != uncached.status || served.body != uncached.body {
            return Err(format!(
                "{}: post-write cached serve diverged from the uncached render \
                 at {page} for {viewer:?}: {:?} != {:?}",
                self.kind.name(),
                served.body,
                uncached.body
            ));
        }
        report.grid_cells_checked += 1;
        if self.fragments && matches!(self.kind, AppKind::Conference) {
            let repairs_after = self.site.app.render_cache_stats().repairs;
            if repairs_after <= repairs_before {
                return Err(format!(
                    "{}: the probe write must repair the warm {page} entry \
                     in place (repairs stayed at {repairs_before})",
                    self.kind.name()
                ));
            }
        }
        Ok(())
    }

    fn finish(self, report: &mut ChaosReport) {
        report.fragment_repairs += self.site.app.render_cache_stats().repairs;
        report.scheduled_checkpoints += self.site.app.scheduled_checkpoint_count();
        self.service.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Floods a one-worker, depth-4 executor with slow requests: the
/// bound must shed (503 + `Retry-After`), never queue past the
/// limit, and the service must answer normally once drained.
fn flood_stage(report: &mut ChaosReport) -> Result<(), String> {
    let app = Arc::new(App::new());
    let mut router = Router::new();
    router.route_read("chaos/slow", |_app: &App, _req| {
        std::thread::sleep(Duration::from_millis(2));
        Response::ok("slow\n".to_owned())
    });
    let router = Arc::new(router);
    let service = ExecutorService::start_bounded(Arc::clone(&app), Arc::clone(&router), 1, 4);

    let receivers: Vec<_> = (0..48)
        .map(|i| {
            service.submit(
                Request::new("chaos/slow", Viewer::Anonymous).with_param("i", &i.to_string()),
            )
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for rx in receivers {
        let served = rx.recv().map_err(|e| format!("flood recv: {e}"))?;
        match served.response.status {
            200 => ok += 1,
            503 => {
                if served.response.header("retry-after").is_none() {
                    return Err("shed response missing Retry-After".to_owned());
                }
                shed += 1;
            }
            other => return Err(format!("flood response had status {other}")),
        }
    }
    if shed == 0 {
        return Err("bounded queue never shed under flood".to_owned());
    }
    if ok == 0 {
        return Err("bounded queue served nothing under flood".to_owned());
    }
    if service.sheds() != shed {
        return Err(format!(
            "shed counter {} disagrees with observed sheds {shed}",
            service.sheds()
        ));
    }
    // Recovery: the drained service serves normally.
    let after = service
        .serve(Request::new("chaos/slow", Viewer::Anonymous).with_param("i", "after"))
        .response;
    if after.status != 200 {
        return Err(format!("post-flood request got {}", after.status));
    }
    report.sheds += shed;
    service.shutdown();
    Ok(())
}

/// Runs one full chaos seed with render-cache fragment repair in its
/// default (enabled) state. See [`run_seed_with_fragments`].
///
/// # Errors
///
/// The first violated invariant, with enough context to replay
/// (`chaos --seed N` reproduces the exact interleaving).
pub fn run_seed(seed: u64) -> Result<ChaosReport, String> {
    run_seed_with_fragments(seed, true)
}

/// Runs one full chaos seed: a randomized scenario over each of the
/// three applications, then the executor flood stage. `fragments`
/// is the scenario knob for render-cache fragment repair: with it
/// off, every stale cache entry pays a full re-render, giving an
/// ablated arm whose interleaving is bit-identical (the knob never
/// draws from the RNG).
///
/// # Errors
///
/// The first violated invariant, with enough context to replay
/// (`chaos --seed N` reproduces the exact interleaving).
pub fn run_seed_with_fragments(seed: u64, fragments: bool) -> Result<ChaosReport, String> {
    run_seed_configured(seed, fragments, true)
}

/// Runs one full chaos seed with both scenario knobs explicit:
/// `fragments` (render-cache fragment repair) and `incremental`
/// (dirty-chunk-only checkpoints — off means every checkpoint,
/// scheduled or explicit, re-exports the full snapshot). Neither
/// knob draws from the RNG, so all four arms of one seed replay the
/// same logical interleaving.
///
/// # Errors
///
/// The first violated invariant, with enough context to replay
/// (`chaos --seed N [--no-incremental]` reproduces the exact
/// interleaving).
pub fn run_seed_configured(
    seed: u64,
    fragments: bool,
    incremental: bool,
) -> Result<ChaosReport, String> {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(seed));
    let mut report = ChaosReport {
        seed,
        ..ChaosReport::default()
    };

    for kind in [AppKind::Conference, AppKind::Courses, AppKind::Health] {
        let mut scenario = Scenario::start(kind, seed, fragments, incremental)?;
        let steps = 14 + rng.below(8);
        let mut had_degraded_arc = false;
        let mut had_kill = false;
        for _ in 0..steps {
            report.steps += 1;
            match rng.below(100) {
                0..=34 => {
                    let status = scenario.write(&mut rng, &mut report);
                    if !matches!(status, 200 | 503) {
                        return Err(format!(
                            "{}: unfaulted write got unexpected status {status}",
                            kind.name()
                        ));
                    }
                }
                35..=59 => {
                    let status = scenario.read(&mut rng);
                    if !matches!(status, 200 | 400) {
                        return Err(format!(
                            "{}: read got unexpected status {status}",
                            kind.name()
                        ));
                    }
                }
                60..=69 => scenario.checkpoint(&mut report)?,
                70..=81 => {
                    scenario.degraded_arc(&mut rng, &mut report)?;
                    had_degraded_arc = true;
                }
                82..=89 => scenario.checkpoint_crash(&mut rng, &mut report)?,
                _ => {
                    scenario.kill_and_restore(&mut rng, &mut report)?;
                    had_kill = true;
                }
            }
        }
        // Every scenario must exercise the headline arcs at least
        // once, whatever the event mix drew.
        if !had_degraded_arc {
            report.steps += 1;
            scenario.degraded_arc(&mut rng, &mut report)?;
        }
        report.steps += 1;
        scenario.repair_probe(&mut rng, &mut report)?;
        if !had_kill {
            report.steps += 1;
        }
        scenario.kill_and_restore(&mut rng, &mut report)?;
        scenario.finish(&mut report);
    }

    flood_stage(&mut report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_streams_are_deterministic_and_distinct() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs, zs, "different seed, different stream");
        assert!(xs.iter().any(|x| *x != xs[0]), "stream advances");
    }

    #[test]
    fn chance_is_bounded() {
        let mut rng = SplitMix64::new(7);
        assert!(!rng.chance(0));
        let mut rng = SplitMix64::new(7);
        assert!(rng.chance(100));
    }

    #[test]
    fn flood_sheds_and_recovers() {
        let mut report = ChaosReport::default();
        flood_stage(&mut report).expect("flood stage invariants");
        assert!(report.sheds > 0);
    }
}
