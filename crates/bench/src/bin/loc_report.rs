//! Figure 6 as a standalone tool: lines of policy vs non-policy code
//! in the Jacqueline and hand-coded case studies.
//!
//! Run with `cargo run -p jbench --bin loc_report`.

fn main() {
    println!("Figure 6 — distribution and size of policy code");
    println!("(policy regions are the `// <policy>` blocks in crates/apps/src)");
    for (name, j, v) in [
        ("conference manager", "conf.rs", "conf_vanilla.rs"),
        ("health record manager", "health.rs", "health_vanilla.rs"),
        ("course manager", "courses.rs", "courses_vanilla.rs"),
    ] {
        if let Err(e) = jbench::loc::print_comparison(name, j, v) {
            eprintln!("loc analysis failed for {name}: {e}");
            std::process::exit(1);
        }
    }
}
