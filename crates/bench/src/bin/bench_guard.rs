//! Bench-regression guard for CI: compares a freshly measured
//! `experiments --smoke --json` run against the committed
//! `BENCH_results.json` baseline and fails (exit 1) if the watched
//! tables regressed beyond the tolerance.
//!
//! ```text
//! bench_guard --baseline BENCH_results.json --fresh fresh_smoke.json \
//!             [--prefix table3_] [--tolerance 0.25] [--mode ratio|absolute]
//! ```
//!
//! Only labels present in *both* files are compared (the committed
//! baseline holds the full sweep, a `--smoke` run only the small
//! sizes), and only tables whose name starts with `--prefix`
//! (default `table3_`, the unmarshalling stress tables this repo
//! optimizes; CI runs further passes with `--prefix e2e_` to gate
//! the HTTP front-end's served / in-process overhead ratio,
//! `--prefix deltas_write_mix --min-median 0.000001` to gate the
//! deltas_on / deltas_off write-mix speedup, whose numerator medians
//! sit below the default noise floor by design, `--prefix
//! render_ --min-median 0.0000005` to gate the render_on /
//! render_off hit-path speedup of the render cache, and `--prefix
//! fragment_ --min-median 0.0000005` to gate the fragments_on /
//! fragments_off repair-vs-invalidate speedup).
//!
//! The default mode is `ratio`: for every sweep size it compares the
//! **jacqueline / baseline overhead ratio** of the fresh run against
//! the committed one, and fails when the ratio grew by more than the
//! tolerance. Machine noise (a slow container, a busy CI runner)
//! inflates both rows of a size equally and cancels out of the
//! ratio, while a genuine regression of the faceted hot path — a
//! broken decode cache, say — multiplies the ratio immediately. The
//! ratio is also portable across CI hardware, where absolute medians
//! are not. `--mode absolute` compares raw medians instead (useful
//! on a quiet, known machine).
//!
//! Two further noise defenses, tuned for `--smoke` runs (the table3
//! measurement takes ≥15 reps precisely because it feeds this gate,
//! but the pages are still microseconds): sizes whose committed
//! jacqueline median is below `--min-median` (default 10µs) sit at
//! the timer noise floor and are skipped, and the guard fails only
//! on a *systemic* regression — at least two comparisons over
//! tolerance, or a single one more than 3× over — because a genuine
//! hot-path breakage (say, a dead decode cache) inflates every size
//! at once, while scheduler noise spikes one.

use std::process::ExitCode;

use jbench::Report;

struct Args {
    baseline: String,
    fresh: String,
    prefix: String,
    tolerance: f64,
    absolute: bool,
    min_median: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: "BENCH_results.json".to_owned(),
        fresh: String::new(),
        prefix: "table3_".to_owned(),
        tolerance: 0.25,
        absolute: false,
        min_median: 10e-6,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--baseline" => args.baseline = value.clone(),
            "--fresh" => args.fresh = value.clone(),
            "--prefix" => args.prefix = value.clone(),
            "--tolerance" => {
                args.tolerance = value.parse().map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--min-median" => {
                args.min_median = value.parse().map_err(|e| format!("--min-median: {e}"))?;
            }
            "--mode" => match value.as_str() {
                "ratio" => args.absolute = false,
                "absolute" => args.absolute = true,
                other => return Err(format!("--mode must be ratio|absolute, got {other}")),
            },
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.fresh.is_empty() {
        return Err("--fresh <path> is required".to_owned());
    }
    Ok(args)
}

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Report::parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn median_of(report: &Report, table: &str, label: &str) -> Option<f64> {
    report
        .table(table)?
        .iter()
        .find(|e| e.label == label)
        .map(|e| e.median_s)
}

/// One comparison row: description, committed value, fresh value.
struct Comparison {
    what: String,
    base: f64,
    fresh: f64,
}

/// Collects the comparisons for one watched table, according to the
/// mode: jacqueline/baseline overhead ratios per size (default) or
/// raw medians per label.
fn comparisons(
    baseline: &Report,
    fresh: &Report,
    table: &str,
    absolute: bool,
    min_median: f64,
) -> Vec<Comparison> {
    let Some(fresh_entries) = fresh.table(table) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for fe in fresh_entries {
        if absolute {
            if let Some(base) = median_of(baseline, table, &fe.label) {
                if base >= min_median {
                    out.push(Comparison {
                        what: format!("{table}/{}", fe.label),
                        base,
                        fresh: fe.median_s,
                    });
                }
            }
            continue;
        }
        // Ratio mode: pair each numerator label with its denominator
        // twin, in both files. Five label conventions exist:
        // "<size> jacqueline" / "<size> baseline" (the faceted
        // overhead of the paper's tables), "<page> served" /
        // "<page> inprocess" (the socket-path overhead of the HTTP
        // front-end), "<size> deltas_on" / "<size> deltas_off" (the
        // write-mix win of decode-cache delta maintenance),
        // "<mix> render_on" / "<mix> render_off" (the hit-path win of
        // the generation-validated render cache), and
        // "<mix> fragments_on" / "<mix> fragments_off" (the
        // repair-vs-full-invalidate win of fragment repair). The
        // third field marks overhead pairs whose committed ratio is
        // clamped at parity — see below.
        const RATIO_PAIRS: [(&str, &str, bool); 6] = [
            (" jacqueline", " baseline", true),
            (" served", " inprocess", true),
            (" deltas_on", " deltas_off", false),
            (" render_on", " render_off", false),
            (" fragments_on", " fragments_off", false),
            (" incremental", " full", false),
        ];
        let Some((size, den_suffix, clamp)) = RATIO_PAIRS
            .iter()
            .find_map(|(num, den, clamp)| fe.label.strip_suffix(num).map(|s| (s, den, *clamp)))
        else {
            continue;
        };
        let denominator = format!("{size}{den_suffix}");
        let fresh_den = median_of(fresh, table, &denominator);
        let base_num = median_of(baseline, table, &fe.label);
        let base_den = median_of(baseline, table, &denominator);
        if let (Some(fd), Some(bn), Some(bd)) = (fresh_den, base_num, base_den) {
            if fd > 0.0 && bd > 0.0 && bn >= min_median {
                // Overhead pairs clamp the committed ratio at parity:
                // where the faceted page is currently *faster* than
                // the hand-coded one, the contract the gate enforces
                // is "stay at or near parity", not "stay 20% ahead".
                // Speedup pairs (deltas_on / deltas_off) must NOT be
                // clamped — their whole point is a ratio far below
                // 1.0, and clamping the base to parity would let the
                // optimization silently die without tripping the gate.
                out.push(Comparison {
                    what: format!("{table}/{size} overhead-ratio"),
                    base: if clamp { (bn / bd).max(1.0) } else { bn / bd },
                    fresh: fe.median_s / fd,
                });
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, fresh) = match (load(&args.baseline), load(&args.fresh)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for r in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_guard: {r}");
            }
            return ExitCode::FAILURE;
        }
    };

    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for table in fresh.table_names() {
        if !table.starts_with(&args.prefix) {
            continue;
        }
        for c in comparisons(&baseline, &fresh, table, args.absolute, args.min_median) {
            compared += 1;
            let growth = c.fresh / c.base;
            let verdict = if growth > 1.0 + args.tolerance {
                regressions.push((
                    growth,
                    format!(
                        "{}: {:.4} -> {:.4} ({:.2}x)",
                        c.what, c.base, c.fresh, growth
                    ),
                ));
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{:<44} base {:>10.4} fresh {:>10.4}  {:>5.2}x  {verdict}",
                c.what, c.base, c.fresh, growth
            );
        }
    }

    if compared == 0 {
        eprintln!(
            "bench_guard: nothing to compare (prefix {:?} matched no shared labels)",
            args.prefix
        );
        return ExitCode::FAILURE;
    }
    // Systemic-regression rule: one noisy outlier is tolerated
    // (unless it is catastrophic); two or more over tolerance fail.
    let catastrophic = 1.0 + 3.0 * args.tolerance;
    let fail = regressions.len() >= 2 || regressions.iter().any(|(g, _)| *g > catastrophic);
    if regressions.is_empty() {
        println!(
            "bench_guard: {compared} comparisons within {:.0}% of baseline",
            args.tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else if !fail {
        println!(
            "bench_guard: 1 of {compared} comparisons over tolerance ({}) — \
             tolerated as an isolated outlier",
            regressions[0].1
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_guard: {} of {compared} comparisons regressed >{:.0}%:",
            regressions.len(),
            args.tolerance * 100.0
        );
        for (_, r) in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
