//! CI chaos driver: runs one seeded chaos scenario sweep (see
//! [`jbench::chaos`]) and exits non-zero on the first violated
//! robustness invariant.
//!
//! Usage: `chaos --seed N [--no-fragments] [--no-incremental]`
//! (defaults to seed 1 with render-cache fragment repair and
//! incremental checkpoints enabled). Each seed is a fully
//! deterministic interleaving of writes, checkpoints (explicit and
//! record-pressure-scheduled), injected storage faults, kills and
//! restores over the three case-study applications — a failing seed
//! replays exactly. `--no-fragments` replays the *same* interleaving
//! with every stale cache entry paying a full re-render instead of a
//! repair; `--no-incremental` replays it with every checkpoint
//! re-exporting the full snapshot instead of only dirty chunks.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut seed = 1u64;
    let mut fragments = true;
    let mut incremental = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().as_deref().map(str::parse) {
                Some(Ok(s)) => seed = s,
                _ => {
                    eprintln!("chaos: --seed requires an unsigned integer");
                    return ExitCode::FAILURE;
                }
            },
            "--no-fragments" => fragments = false,
            "--no-incremental" => incremental = false,
            other => {
                eprintln!(
                    "chaos: unknown argument {other} \
                     (usage: chaos --seed N [--no-fragments] [--no-incremental])"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match jbench::chaos::run_seed_configured(seed, fragments, incremental) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(violation) => {
            eprintln!("chaos seed {seed} FAILED: {violation}");
            ExitCode::FAILURE
        }
    }
}
