//! Regenerates every table and figure of the paper's evaluation (§6),
//! plus the post-paper tables added by this reproduction (memoization
//! ablation, concurrent-executor throughput).
//!
//! Run with `cargo run --release -p jbench --bin experiments -- --all`
//! (or a subset: `--fig6 --fig9a --fig9b --fig9c --table3 --table4
//! --table5 --memo --concurrent`). `--smoke` shrinks the sweeps for
//! CI. Output mirrors the paper's rows; absolute times are this
//! machine's, the comparison *shapes* are the reproduction target
//! (see EXPERIMENTS.md). Alongside the printed tables the run records
//! per-table medians and writes them to `BENCH_results.json` (or the
//! path given with `--json <path>`), so successive PRs accumulate a
//! perf trajectory.

use std::path::PathBuf;
use std::sync::RwLock;

use apps::{conf, courses, health, workload};
use faceted::{Branch, Branches, FacetedList, Label};
use form::GuardedRow;
use jacqueline::{Executor, Viewer};
use jbench::{doubling_sweep, fmt_secs, print_row, time_stats, Report};
use microdb::Value;

/// Matches the paper's protocol: average over 10 sequential requests.
const REPS: usize = 10;

/// Sweep sizes and repetition counts, shrunk by `--smoke` for CI.
struct Config {
    sweep: Vec<usize>,
    reps: usize,
    smoke: bool,
}

/// The flags that select individual tables; any other flag is a
/// modifier. Running with no table flag at all means `--all`.
const TABLE_FLAGS: [&str; 9] = [
    "--fig6",
    "--fig9a",
    "--fig9b",
    "--fig9c",
    "--table3",
    "--table4",
    "--table5",
    "--memo",
    "--concurrent",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    let all = flags.contains(&"--all") || !flags.iter().any(|f| TABLE_FLAGS.contains(f));
    let want = |flag: &str| all || flags.contains(&flag);
    let smoke = flags.contains(&"--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("BENCH_results.json"), PathBuf::from);

    let cfg = Config {
        sweep: if smoke {
            vec![8, 16, 32]
        } else {
            doubling_sweep()
        },
        reps: if smoke { 3 } else { REPS },
        smoke,
    };
    let mut report = Report::new();

    if want("--fig6") {
        fig6();
    }
    if want("--table3") || want("--fig9a") {
        fig9a_table3(&cfg, &mut report);
    }
    if want("--table4") {
        table4(&cfg, &mut report);
    }
    if want("--fig9b") {
        fig9b(&cfg, &mut report);
    }
    if want("--fig9c") {
        fig9c(&cfg, &mut report);
    }
    if want("--table5") {
        table5(&cfg, &mut report);
    }
    if want("--memo") {
        memo_ablation(&cfg, &mut report);
    }
    if want("--concurrent") {
        concurrent(&cfg, &mut report);
    }

    if !report.is_empty() {
        match report.write_json(&json_path) {
            Ok(()) => println!("\nwrote {}", json_path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", json_path.display()),
        }
    }
}

/// Times `f`, printing the average (the paper's protocol) and
/// recording the median under `table`/`label`.
fn measure(report: &mut Report, table: &str, label: &str, reps: usize, f: impl FnMut()) -> f64 {
    let stats = time_stats(reps, f);
    report.record(table, label, stats.median_s);
    stats.avg_s
}

/// Figure 6: lines of policy code, Jacqueline vs hand-coded.
fn fig6() {
    println!("\n==== Figure 6: distribution and size of policy code ====");
    for (name, j, v) in [
        ("conference manager", "conf.rs", "conf_vanilla.rs"),
        ("health record manager", "health.rs", "health_vanilla.rs"),
        ("course manager", "courses.rs", "courses_vanilla.rs"),
    ] {
        if let Err(e) = jbench::loc::print_comparison(name, j, v) {
            eprintln!("loc analysis failed for {name}: {e}");
        }
    }
}

/// Figure 9a + Table 3: conference stress tests.
fn fig9a_table3(cfg: &Config, report: &mut Report) {
    println!("\n==== Table 3 / Figure 9a: time to view all papers ====");
    print_row(&[
        "# P".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(32, n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        let tj = measure(
            report,
            "table3_papers",
            &format!("papers={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_papers(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "table3_papers",
            &format!("papers={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_papers(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }

    println!("\n==== Table 3 / Figure 9a: time to view all users ====");
    print_row(&[
        "# U".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(n, 8);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        let tj = measure(
            report,
            "table3_users",
            &format!("users={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_users(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "table3_users",
            &format!("users={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_users(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Table 4: single paper / single user while the table grows.
fn table4(cfg: &Config, report: &mut Report) {
    println!("\n==== Table 4: time to view a single paper ====");
    print_row(&[
        "Papers".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(32, n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        let tj = measure(
            report,
            "table4_paper",
            &format!("papers={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::single_paper(&app, &viewer, 1));
            },
        );
        let tv = measure(
            report,
            "table4_paper",
            &format!("papers={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.single_paper(&viewer, 1));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }

    println!("\n==== Table 4: time to view a single user ====");
    print_row(&[
        "Users".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(n, 8);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        let tj = measure(
            report,
            "table4_user",
            &format!("users={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::single_user(&app, &viewer, 2));
            },
        );
        let tv = measure(
            report,
            "table4_user",
            &format!("users={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.single_user(&viewer, 2));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Figure 9b: health-record stress test.
fn fig9b(cfg: &Config, report: &mut Report) {
    println!("\n==== Figure 9b: health records, time to view summaries ====");
    print_row(&[
        "# Users".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::health(n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.doctor);
        let tj = measure(
            report,
            "fig9b",
            &format!("users={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(health::all_records_summary(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "fig9b",
            &format!("users={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_records_summary(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Figure 9c: course-manager stress test (Early Pruning on).
fn fig9c(cfg: &Config, report: &mut Report) {
    println!("\n==== Figure 9c: courses, time to view all courses ====");
    print_row(&[
        "# C".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::courses(n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.student);
        let tj = measure(
            report,
            "fig9c",
            &format!("courses={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(courses::all_courses(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "fig9c",
            &format!("courses={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_courses(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Table 5: Early Pruning on vs off.
fn table5(cfg: &Config, report: &mut Report) {
    println!("\n==== Table 5: all courses, with and without Early Pruning ====");
    print_row(&[
        "Courses".into(),
        "w/o pruning".into(),
        "w/ pruning".into(),
        String::new(),
    ]);
    // Without pruning the page is one faceted string whose leaf count
    // doubles per course; like the paper we stop measuring once it
    // blows up and print "—".
    const NO_PRUNE_MAX: usize = 16;
    let sizes: &[usize] = if cfg.smoke {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
    };
    for &n in sizes {
        let w = workload::courses(n);
        let app = w.app;
        let viewer = Viewer::User(w.student);
        let slow = if n <= NO_PRUNE_MAX {
            let t = measure(
                report,
                "table5_pruning",
                &format!("courses={n} unpruned"),
                3,
                || {
                    std::hint::black_box(courses::all_courses_no_pruning(&app, &viewer));
                },
            );
            fmt_secs(t)
        } else {
            "—".to_owned()
        };
        let fast = fmt_secs(measure(
            report,
            "table5_pruning",
            &format!("courses={n} pruned"),
            cfg.reps,
            || {
                std::hint::black_box(courses::all_courses(&app, &viewer));
            },
        ));
        print_row(&[n.to_string(), slow, fast, String::new()]);
    }
}

/// A faceted row count over `n` rows with independent singleton
/// guards: the canonical facet-blow-up aggregate. With hash-consing
/// the 2^n-path accumulator is an O(n²)-node DAG, and the memoized
/// `ite`/`assume` walks are linear in *nodes*; without the computed
/// tables the same walks revisit shared nodes once per path.
fn counting_workload(n: u32) -> FacetedList<GuardedRow> {
    (0..n)
        .map(|i| {
            let guard = Branches::new().with(Branch::pos(Label::from_index(i)));
            (
                guard.clone(),
                GuardedRow {
                    jid: i64::from(i),
                    guard,
                    fields: vec![Value::Int(1)],
                },
            )
        })
        .collect()
}

/// Memoization ablation: the `table5_pruning`-style facet blow-up,
/// isolated to the faceted runtime (no database), with the computed
/// tables switched off and on.
fn memo_ablation(cfg: &Config, report: &mut Report) {
    println!("\n==== Memoization ablation: faceted count over n guarded rows ====");
    print_row(&[
        "Rows".into(),
        "memo off".into(),
        "memo on".into(),
        "speedup".into(),
    ]);
    let sizes: &[u32] = if cfg.smoke {
        &[12, 14, 16]
    } else {
        &[12, 14, 16, 18, 20]
    };
    for &n in sizes {
        let rows = counting_workload(n);
        let was = faceted::set_memoization(false);
        let off = measure(
            report,
            "memoization",
            &format!("rows={n} memo_off"),
            3,
            || {
                let count = form::faceted_count(&rows);
                assert_eq!(*count.project(&faceted::View::empty()), 0);
                std::hint::black_box(count);
            },
        );
        faceted::set_memoization(true);
        let on = measure(
            report,
            "memoization",
            &format!("rows={n} memo_on"),
            cfg.reps,
            || {
                let count = form::faceted_count(&rows);
                std::hint::black_box(count);
            },
        );
        faceted::set_memoization(was);
        print_row(&[
            n.to_string(),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
    let stats = faceted::intern_stats::<i64>();
    println!(
        "  [i64 store: {} leaves, {} splits, {} memo entries, {} hits / {} misses]",
        stats.leaves, stats.splits, stats.memo_entries, stats.memo_hits, stats.memo_misses
    );
}

/// Concurrent executor throughput on the conference workload.
///
/// The speedup column is bounded by the machine: on a single-CPU
/// container the best possible result is ≈1.0× (the table then
/// measures pure executor/lock/interner *overhead*); the >1.5×
/// target at 4 threads applies on hardware with ≥4 cores. The
/// available parallelism is printed and recorded so the JSON
/// trajectory stays interpretable across machines.
fn concurrent(cfg: &Config, report: &mut Report) {
    println!("\n==== Fig. 9 (concurrent): executor throughput, conference page mix ====");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("  [available parallelism: {cores} core(s)]");
    report.record("fig9_concurrent", "available_cores", cores as f64);
    print_row(&[
        "Threads".into(),
        "batch".into(),
        "req/s".into(),
        "speedup".into(),
    ]);
    let smoke = cfg.smoke;
    let (users, papers, n_requests) = if smoke { (16, 24, 64) } else { (32, 48, 128) };
    let w = workload::conference(users, papers);
    let app = RwLock::new(w.app);
    let router = conf::router();
    let requests = workload::conference_requests(n_requests, users, papers);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let executor = Executor::with_threads(threads);
        let t = measure(
            report,
            "fig9_concurrent",
            &format!("threads={threads}"),
            cfg.reps,
            || {
                std::hint::black_box(executor.run(&app, &router, &requests));
            },
        );
        let base_t = *base.get_or_insert(t);
        print_row(&[
            threads.to_string(),
            fmt_secs(t),
            format!("{:.0}", n_requests as f64 / t),
            format!("{:.2}x", base_t / t),
        ]);
    }
}
