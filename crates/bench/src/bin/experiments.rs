//! Regenerates every table and figure of the paper's evaluation (§6),
//! plus the post-paper tables added by this reproduction (memoization
//! ablation, concurrent-executor throughput).
//!
//! Run with `cargo run --release -p jbench --bin experiments -- --all`
//! (or a subset: `--fig6 --fig9a --fig9b --fig9c --table3 --table4
//! --table5 --memo --concurrent --cache --deltas --render-cache
//! --fragments --locks --load --checkpoint`). `--smoke` shrinks the
//! sweeps for
//! CI; `--serve
//! [--port N]` skips measurement and serves the conference app over
//! HTTP until killed. `--load` measures the socket path: the served
//! vs in-process overhead table (gated in CI) and the open-loop load
//! harness with queue/service latency percentiles. `--checkpoint`
//! measures the persistence subsystem: checkpoint + restore medians
//! (gated in CI, absolute mode) and interner node counts around the
//! quiescent-point GC. Output mirrors the paper's rows; absolute times are this
//! machine's, the comparison *shapes* are the reproduction target
//! (see EXPERIMENTS.md). Alongside the printed tables the run records
//! per-table medians and writes them to `BENCH_results.json` (or the
//! path given with `--json <path>`), so successive PRs accumulate a
//! perf trajectory.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use apps::{conf, courses, health, workload};
use faceted::{Branch, Branches, FacetedList, Label};
use form::GuardedRow;
use jacqueline::{Executor, Server, ServerConfig, Viewer};
use jbench::http::HttpClient;
use jbench::{doubling_sweep, fmt_secs, percentile, print_row, time_stats, Report};
use microdb::Value;

/// Matches the paper's protocol: average over 10 sequential requests.
const REPS: usize = 10;

/// Sweep sizes and repetition counts, shrunk by `--smoke` for CI.
struct Config {
    sweep: Vec<usize>,
    reps: usize,
    smoke: bool,
}

/// The flags that select individual tables; any other flag is a
/// modifier. Running with no table flag at all means `--all`.
const TABLE_FLAGS: [&str; 16] = [
    "--fig6",
    "--fig9a",
    "--fig9b",
    "--fig9c",
    "--table3",
    "--table4",
    "--table5",
    "--memo",
    "--concurrent",
    "--cache",
    "--deltas",
    "--render-cache",
    "--fragments",
    "--locks",
    "--load",
    "--checkpoint",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args.iter().map(String::as_str).collect();
    if flags.contains(&"--serve") {
        // Not a measurement: serve the conference app until killed
        // (for manual curl / external load-generator sessions).
        serve_blocking(&args);
        return;
    }
    let all = flags.contains(&"--all") || !flags.iter().any(|f| TABLE_FLAGS.contains(f));
    let want = |flag: &str| all || flags.contains(&flag);
    let smoke = flags.contains(&"--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("BENCH_results.json"), PathBuf::from);

    let cfg = Config {
        sweep: if smoke {
            vec![8, 16, 32]
        } else {
            doubling_sweep()
        },
        reps: if smoke { 3 } else { REPS },
        smoke,
    };
    let mut report = Report::new();

    if want("--fig6") {
        fig6();
    }
    if want("--table3") || want("--fig9a") {
        fig9a_table3(&cfg, &mut report);
    }
    if want("--table4") {
        table4(&cfg, &mut report);
    }
    if want("--fig9b") {
        fig9b(&cfg, &mut report);
    }
    if want("--fig9c") {
        fig9c(&cfg, &mut report);
    }
    if want("--table5") {
        table5(&cfg, &mut report);
    }
    if want("--memo") {
        memo_ablation(&cfg, &mut report);
    }
    if want("--concurrent") {
        concurrent(&cfg, &mut report);
    }
    if want("--cache") {
        cache_ablation(&cfg, &mut report);
    }
    if want("--deltas") {
        delta_ablation(&cfg, &mut report);
    }
    if want("--render-cache") {
        render_cache_mix(&cfg, &mut report);
    }
    if want("--fragments") {
        fragment_mix(&cfg, &mut report);
    }
    if want("--locks") {
        lock_contention(&cfg, &mut report);
    }
    if want("--load") {
        served_overhead(&cfg, &mut report);
        open_loop_load(&cfg, &mut report);
    }
    if want("--checkpoint") {
        checkpoint_latency(&cfg, &mut report);
        incremental_checkpoint_latency(&cfg, &mut report);
    }

    if !report.is_empty() {
        match report.write_json(&json_path) {
            Ok(()) => println!("\nwrote {}", json_path.display()),
            Err(e) => eprintln!("\nfailed to write {}: {e}", json_path.display()),
        }
    }
}

/// Times `f`, printing the average (the paper's protocol) and
/// recording the median under `table`/`label`.
fn measure(report: &mut Report, table: &str, label: &str, reps: usize, f: impl FnMut()) -> f64 {
    let stats = time_stats(reps, f);
    report.record(table, label, stats.median_s);
    stats.avg_s
}

/// Figure 6: lines of policy code, Jacqueline vs hand-coded.
fn fig6() {
    println!("\n==== Figure 6: distribution and size of policy code ====");
    for (name, j, v) in [
        ("conference manager", "conf.rs", "conf_vanilla.rs"),
        ("health record manager", "health.rs", "health_vanilla.rs"),
        ("course manager", "courses.rs", "courses_vanilla.rs"),
    ] {
        if let Err(e) = jbench::loc::print_comparison(name, j, v) {
            eprintln!("loc analysis failed for {name}: {e}");
        }
    }
}

/// Figure 9a + Table 3: conference stress tests.
///
/// These medians feed the CI regression gate (`bench_guard`), so even
/// `--smoke` runs take a healthy number of repetitions — the pages
/// are microseconds, and a median over 3 samples is too noisy to
/// gate on.
fn fig9a_table3(cfg: &Config, report: &mut Report) {
    if cfg.reps < 15 {
        println!(
            "\n[table3: raising reps {} -> 15: these medians feed the CI gate]",
            cfg.reps
        );
    }
    let cfg = &Config {
        sweep: cfg.sweep.clone(),
        reps: cfg.reps.max(15),
        smoke: cfg.smoke,
    };
    println!("\n==== Table 3 / Figure 9a: time to view all papers ====");
    print_row(&[
        "# P".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(32, n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        let tj = measure(
            report,
            "table3_papers",
            &format!("papers={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_papers(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "table3_papers",
            &format!("papers={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_papers(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }

    println!("\n==== Table 3 / Figure 9a: time to view all users ====");
    print_row(&[
        "# U".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(n, 8);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        let tj = measure(
            report,
            "table3_users",
            &format!("users={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_users(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "table3_users",
            &format!("users={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_users(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Table 4: single paper / single user while the table grows.
fn table4(cfg: &Config, report: &mut Report) {
    println!("\n==== Table 4: time to view a single paper ====");
    print_row(&[
        "Papers".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(32, n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        let tj = measure(
            report,
            "table4_paper",
            &format!("papers={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::single_paper(&app, &viewer, 1));
            },
        );
        let tv = measure(
            report,
            "table4_paper",
            &format!("papers={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.single_paper(&viewer, 1));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }

    println!("\n==== Table 4: time to view a single user ====");
    print_row(&[
        "Users".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::conference(n, 8);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        let tj = measure(
            report,
            "table4_user",
            &format!("users={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(conf::single_user(&app, &viewer, 2));
            },
        );
        let tv = measure(
            report,
            "table4_user",
            &format!("users={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.single_user(&viewer, 2));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Figure 9b: health-record stress test.
fn fig9b(cfg: &Config, report: &mut Report) {
    println!("\n==== Figure 9b: health records, time to view summaries ====");
    print_row(&[
        "# Users".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::health(n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.doctor);
        let tj = measure(
            report,
            "fig9b",
            &format!("users={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(health::all_records_summary(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "fig9b",
            &format!("users={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_records_summary(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Figure 9c: course-manager stress test (Early Pruning on).
fn fig9c(cfg: &Config, report: &mut Report) {
    println!("\n==== Figure 9c: courses, time to view all courses ====");
    print_row(&[
        "# C".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for &n in &cfg.sweep {
        let w = workload::courses(n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.student);
        let tj = measure(
            report,
            "fig9c",
            &format!("courses={n} jacqueline"),
            cfg.reps,
            || {
                std::hint::black_box(courses::all_courses(&app, &viewer));
            },
        );
        let tv = measure(
            report,
            "fig9c",
            &format!("courses={n} baseline"),
            cfg.reps,
            || {
                std::hint::black_box(vanilla.all_courses(&viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Table 5: Early Pruning on vs off.
fn table5(cfg: &Config, report: &mut Report) {
    println!("\n==== Table 5: all courses, with and without Early Pruning ====");
    print_row(&[
        "Courses".into(),
        "w/o pruning".into(),
        "w/ pruning".into(),
        String::new(),
    ]);
    // Without pruning the page is one faceted string whose leaf count
    // doubles per course; like the paper we stop measuring once it
    // blows up and print "—".
    const NO_PRUNE_MAX: usize = 16;
    let sizes: &[usize] = if cfg.smoke {
        &[4, 8, 16, 32, 64]
    } else {
        &[4, 8, 16, 32, 64, 128, 256, 512, 1024]
    };
    for &n in sizes {
        let w = workload::courses(n);
        let app = w.app;
        let viewer = Viewer::User(w.student);
        let slow = if n <= NO_PRUNE_MAX {
            let t = measure(
                report,
                "table5_pruning",
                &format!("courses={n} unpruned"),
                3,
                || {
                    std::hint::black_box(courses::all_courses_no_pruning(&app, &viewer));
                },
            );
            fmt_secs(t)
        } else {
            "—".to_owned()
        };
        let fast = fmt_secs(measure(
            report,
            "table5_pruning",
            &format!("courses={n} pruned"),
            cfg.reps,
            || {
                std::hint::black_box(courses::all_courses(&app, &viewer));
            },
        ));
        print_row(&[n.to_string(), slow, fast, String::new()]);
    }
}

/// A faceted row count over `n` rows with independent singleton
/// guards: the canonical facet-blow-up aggregate. With hash-consing
/// the 2^n-path accumulator is an O(n²)-node DAG, and the memoized
/// `ite`/`assume` walks are linear in *nodes*; without the computed
/// tables the same walks revisit shared nodes once per path.
fn counting_workload(n: u32) -> FacetedList<GuardedRow> {
    (0..n)
        .map(|i| {
            let guard = Branches::new().with(Branch::pos(Label::from_index(i)));
            (
                guard.clone(),
                GuardedRow {
                    jid: i64::from(i),
                    guard,
                    fields: vec![Value::Int(1)],
                },
            )
        })
        .collect()
}

/// Memoization ablation: the `table5_pruning`-style facet blow-up,
/// isolated to the faceted runtime (no database), with the computed
/// tables switched off and on.
fn memo_ablation(cfg: &Config, report: &mut Report) {
    println!("\n==== Memoization ablation: faceted count over n guarded rows ====");
    print_row(&[
        "Rows".into(),
        "memo off".into(),
        "memo on".into(),
        "speedup".into(),
    ]);
    let sizes: &[u32] = if cfg.smoke {
        &[12, 14, 16]
    } else {
        &[12, 14, 16, 18, 20]
    };
    for &n in sizes {
        let rows = counting_workload(n);
        let was = faceted::set_memoization(false);
        let off = measure(
            report,
            "memoization",
            &format!("rows={n} memo_off"),
            3,
            || {
                let count = form::faceted_count(&rows);
                assert_eq!(*count.project(&faceted::View::empty()), 0);
                std::hint::black_box(count);
            },
        );
        faceted::set_memoization(true);
        let on = measure(
            report,
            "memoization",
            &format!("rows={n} memo_on"),
            cfg.reps,
            || {
                let count = form::faceted_count(&rows);
                std::hint::black_box(count);
            },
        );
        faceted::set_memoization(was);
        print_row(&[
            n.to_string(),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
    let stats = faceted::intern_stats::<i64>();
    println!(
        "  [i64 store: {} leaves, {} splits, {} memo entries, {} hits / {} misses]",
        stats.leaves, stats.splits, stats.memo_entries, stats.memo_hits, stats.memo_misses
    );
}

/// Decode-cache ablation: the Table 3 pages with the
/// generation-stamped decode cache on vs off. "Off" re-parses every
/// row's `jvars` per request (the pre-cache behavior); "on" shares
/// one decoded snapshot per table generation across requests.
fn cache_ablation(cfg: &Config, report: &mut Report) {
    println!("\n==== Decode-cache ablation: Table 3 pages, cache off vs on ====");
    print_row(&[
        "Size".into(),
        "cache off".into(),
        "cache on".into(),
        "speedup".into(),
    ]);
    println!("  [time to view all users]");
    for &n in &cfg.sweep {
        let w = workload::conference(n, 8);
        let mut app = w.app;
        let viewer = Viewer::User(w.author);
        app.db.set_decode_cache(false);
        let off = measure(
            report,
            "cache_ablation_users",
            &format!("users={n} cache_off"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_users(&app, &viewer));
            },
        );
        app.db.set_decode_cache(true);
        let on = measure(
            report,
            "cache_ablation_users",
            &format!("users={n} cache_on"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_users(&app, &viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
    println!("  [time to view all papers]");
    for &n in &cfg.sweep {
        let w = workload::conference(32, n);
        let mut app = w.app;
        let viewer = Viewer::User(w.pc_member);
        app.db.set_decode_cache(false);
        let off = measure(
            report,
            "cache_ablation_papers",
            &format!("papers={n} cache_off"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_papers(&app, &viewer));
            },
        );
        app.db.set_decode_cache(true);
        let on = measure(
            report,
            "cache_ablation_papers",
            &format!("papers={n} cache_on"),
            cfg.reps,
            || {
                std::hint::black_box(conf::all_papers(&app, &viewer));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
    let w = workload::conference(256, 64);
    let app = w.app;
    let viewer = Viewer::User(w.pc_member);
    let _ = conf::all_papers(&app, &viewer);
    let _ = conf::all_papers(&app, &viewer);
    let stats = app.db.decode_cache_stats();
    println!(
        "  [decode cache: {} hits / {} misses]",
        stats.hits, stats.misses
    );
}

/// Delta-maintenance ablation: the write-heavy Table 3 mix. Every
/// request submits one paper and then fetches the decoded paper
/// table — the step every Table 3 page performs before rendering,
/// and the one the decode cache serves. With delta maintenance off,
/// each single-row write stales the whole `(table, generation)` slot
/// and the next fetch re-decodes every row's `jvars`; with it on,
/// the change journal patches the warm snapshot in place and the
/// fetch decodes exactly the one new row. (The page *render* on top
/// of the fetch is O(rows) in both arms — label resolution and
/// string formatting — so it is excluded here to keep the table
/// about the decode path; `cache_ablation` measures full pages.)
fn delta_ablation(cfg: &Config, report: &mut Report) {
    println!("\n==== Delta-maintenance ablation: write-heavy Table 3 mix ====");
    print_row(&[
        "Size".into(),
        "deltas off".into(),
        "deltas on".into(),
        "speedup".into(),
    ]);
    println!("  [submit one paper + fetch the decoded paper table, per request]");
    for &n in &cfg.sweep {
        let run = |enabled: bool, report: &mut Report, label: &str| {
            let w = workload::conference(32, n);
            let mut app = w.app;
            app.db.set_delta_maintenance(enabled);
            let author = Viewer::User(w.author);
            // Warm the decode cache before the clock starts.
            let _ = app.all("paper").unwrap();
            measure(report, "deltas_write_mix", label, cfg.reps, || {
                conf::submit_paper(&app, &author, "delta bench paper").unwrap();
                std::hint::black_box(app.all("paper").unwrap());
            })
        };
        let off = run(false, report, &format!("papers={n} deltas_off"));
        let on = run(true, report, &format!("papers={n} deltas_on"));
        print_row(&[
            n.to_string(),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
}

/// Render-cache ablation (`render_cache_read_mix`, CI-gated on the
/// `render_` prefix): the conference page mix through the sequential
/// executor with the generation-validated render cache on vs off.
///
/// Two mixes per size. The *read* mix replays a fixed
/// [`workload::conference_requests`] batch — after the untimed
/// warm-up call every `(page, viewer)` key is populated, so the "on"
/// arm measures steady-state hits (lock + generation check + byte
/// clone) against full policy renders. The *25%-write* mix submits a
/// paper every 4th request: each write moves the `paper` table's
/// generation, so `papers/all` re-renders on its next touch while the
/// `users/one` pages keep hitting — the honest invalidation-cost
/// number, on a fresh app per rep (the writes grow the tables).
///
/// Reps are floored at 15: the hit-path medians feed the CI gate.
fn render_cache_mix(cfg: &Config, report: &mut Report) {
    println!("\n==== Render-cache ablation: conference page mix, cache on vs off ====");
    let reps = cfg.reps.max(15);
    let executor = Executor::sequential();
    let router = conf::router();
    print_row(&[
        "Mix / size".into(),
        "render off".into(),
        "render on".into(),
        "speedup".into(),
    ]);
    let users = 16;
    let n_requests = 64;
    for &n in &cfg.sweep {
        let requests = workload::conference_requests(n_requests, users, n);
        let run = |enabled: bool, report: &mut Report, label: &str| {
            let app = workload::conference(users, n).app;
            if !enabled {
                app.set_render_cache(false);
            }
            measure(report, "render_cache_read_mix", label, reps, || {
                std::hint::black_box(executor.run(&app, &router, &requests));
            })
        };
        let off = run(false, report, &format!("read papers={n} render_off"));
        let on = run(true, report, &format!("read papers={n} render_on"));
        print_row(&[
            format!("read {n}"),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
    // The 25%-write mix at two fixed sizes (one under --smoke): the
    // gate compares labels shared between the smoke and committed
    // runs, so the small size appears in both.
    let write_sizes: &[usize] = if cfg.smoke { &[16] } else { &[16, 256] };
    for &n in write_sizes {
        let mix: Vec<jacqueline::Request> = (0..n_requests)
            .map(|i| {
                let viewer = Viewer::User(1 + (i % users) as i64);
                match i % 4 {
                    0 => jacqueline::Request::new("papers/submit", viewer)
                        .with_param("title", &format!("render-mix paper {i}")),
                    1 => jacqueline::Request::new("papers/all", viewer),
                    _ => jacqueline::Request::new("users/one", viewer)
                        .with_param("id", &(1 + (i % users) as i64).to_string()),
                }
            })
            .collect();
        // The two arms sit near parity here (the invalidated
        // `papers/all` re-renders dominate the batch), so back-to-back
        // arm runs would let environmental drift — the global interner
        // and memo tables grow monotonically across a long bench run —
        // masquerade as a difference. Interleave the arms rep by rep
        // instead: both see the same drift, and the ratio stays
        // honest. A fresh app per rep (built and dropped outside the
        // clock): each rep's paper submissions grow the tables the
        // next rep would measure.
        let build = |enabled: bool| {
            let app = workload::conference(users, n).app;
            if !enabled {
                app.set_render_cache(false);
            }
            app
        };
        let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        for arm in 0..2 {
            let app = build(arm == 1);
            let _ = executor.run(&app, &router, &mix); // untimed warm-up
        }
        for _ in 0..reps {
            for (arm, sink) in samples.iter_mut().enumerate() {
                let app = build(arm == 1);
                let clock = Instant::now();
                std::hint::black_box(executor.run(&app, &router, &mix));
                sink.push(clock.elapsed().as_secs_f64());
            }
        }
        let off = percentile(&samples[0], 50.0);
        let on = percentile(&samples[1], 50.0);
        report.record(
            "render_cache_read_mix",
            &format!("write25 papers={n} render_off"),
            off,
        );
        report.record(
            "render_cache_read_mix",
            &format!("write25 papers={n} render_on"),
            on,
        );
        print_row(&[
            format!("write25 {n}"),
            fmt_secs(off),
            fmt_secs(on),
            format!("{:.1}x", off / on),
        ]);
    }
    // Counter footer: one warm batch, so the hit/invalidation traffic
    // of the read mix is visible next to the medians.
    let n = 64;
    let app = workload::conference(users, n).app;
    let requests = workload::conference_requests(n_requests, users, n);
    let _ = executor.run(&app, &router, &requests);
    let _ = executor.run(&app, &router, &requests);
    let stats = app.render_cache_stats();
    println!(
        "  [render cache: {} hits / {} misses, {} invalidated, {} uncacheable]",
        stats.hits, stats.misses, stats.invalidated, stats.uncacheable
    );
}

/// Fragment-repair ablation (`fragment_write_mix`, CI-gated on the
/// `fragment_` prefix): the 25%-write conference mix of
/// [`render_cache_mix`] across **three** arms — cache off entirely
/// (`render_off`), cache on with fragment repair ablated so every
/// write-invalidated `papers/all` pays a full faceted re-render
/// (`fragments_off`), and cache on with repair so a single paper
/// submit re-renders exactly the one touched fragment and splices it
/// into the cached shell (`fragments_on`). The arms interleave rep by
/// rep on fresh apps, same as the render-cache table and for the same
/// drift reasons; the gate's unclamped `fragments_on/fragments_off`
/// ratio pair is the headline repair-vs-invalidate number.
fn fragment_mix(cfg: &Config, report: &mut Report) {
    println!(
        "\n==== Fragment-repair ablation: 25%-write mix, repair vs invalidate vs no cache ===="
    );
    let reps = cfg.reps.max(15);
    let executor = Executor::sequential();
    let router = conf::router();
    print_row(&[
        "Size".into(),
        "render off".into(),
        "fragments off".into(),
        "fragments on".into(),
        "repair speedup".into(),
    ]);
    let users = 16;
    let n_requests = 64;
    let write_sizes: &[usize] = if cfg.smoke { &[16] } else { &[16, 256] };
    for &n in write_sizes {
        let mix: Vec<jacqueline::Request> = (0..n_requests)
            .map(|i| {
                let viewer = Viewer::User(1 + (i % users) as i64);
                match i % 4 {
                    0 => jacqueline::Request::new("papers/submit", viewer)
                        .with_param("title", &format!("fragment-mix paper {i}")),
                    1 => jacqueline::Request::new("papers/all", viewer),
                    _ => jacqueline::Request::new("users/one", viewer)
                        .with_param("id", &(1 + (i % users) as i64).to_string()),
                }
            })
            .collect();
        // Arm 0: no render cache. Arm 1: cache, repair ablated.
        // Arm 2: cache with fragment repair.
        let build = |arm: usize| {
            let app = workload::conference(users, n).app;
            match arm {
                0 => {
                    app.set_render_cache(false);
                }
                1 => {
                    app.set_fragment_repair(false);
                }
                _ => {}
            }
            app
        };
        let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for arm in 0..3 {
            let app = build(arm);
            let _ = executor.run(&app, &router, &mix); // untimed warm-up
        }
        for _ in 0..reps {
            for (arm, sink) in samples.iter_mut().enumerate() {
                let app = build(arm);
                let clock = Instant::now();
                std::hint::black_box(executor.run(&app, &router, &mix));
                sink.push(clock.elapsed().as_secs_f64());
            }
        }
        let labels = ["render_off", "fragments_off", "fragments_on"];
        let medians: Vec<f64> = samples.iter().map(|s| percentile(s, 50.0)).collect();
        for (label, median) in labels.iter().zip(&medians) {
            report.record(
                "fragment_write_mix",
                &format!("write25 papers={n} {label}"),
                *median,
            );
        }
        print_row(&[
            n.to_string(),
            fmt_secs(medians[0]),
            fmt_secs(medians[1]),
            fmt_secs(medians[2]),
            format!("{:.1}x", medians[1] / medians[2]),
        ]);
    }
    // Counter footer: one warm write-mix batch with repair on, so the
    // repair/invalidate traffic behind the medians is visible.
    let n = write_sizes[write_sizes.len() - 1];
    let app = workload::conference(users, n).app;
    let mix: Vec<jacqueline::Request> = (0..n_requests)
        .map(|i| {
            let viewer = Viewer::User(1 + (i % users) as i64);
            match i % 4 {
                0 => jacqueline::Request::new("papers/submit", viewer)
                    .with_param("title", &format!("fragment-footer paper {i}")),
                1 => jacqueline::Request::new("papers/all", viewer),
                _ => jacqueline::Request::new("users/one", viewer)
                    .with_param("id", &(1 + (i % users) as i64).to_string()),
            }
        })
        .collect();
    let _ = executor.run(&app, &router, &mix);
    let _ = executor.run(&app, &router, &mix);
    let stats = app.render_cache_stats();
    println!(
        "  [render cache: {} hits / {} misses, {} repairs ({} fragments re-rendered), \
         {} invalidated]",
        stats.hits, stats.misses, stats.repairs, stats.repaired_fragments, stats.invalidated
    );
}

/// A conservative router: the same conference controllers registered
/// through the legacy no-footprint API, so every write serializes the
/// whole app and reads exclude all declared tables — the pre-sharding
/// locking discipline, for ablation.
fn conservative_conf_router() -> jacqueline::Router {
    let mut r = jacqueline::Router::new();
    r.route_read("papers/all", |app, req: &jacqueline::Request| {
        jacqueline::Response::ok(conf::all_papers(app, &req.viewer))
    });
    r.route_read("users/all", |app, req: &jacqueline::Request| {
        jacqueline::Response::ok(conf::all_users(app, &req.viewer))
    });
    r.route_read("papers/one", |app, req: &jacqueline::Request| {
        match req.int_param("id") {
            Some(id) => jacqueline::Response::ok(conf::single_paper(app, &req.viewer, id)),
            None => jacqueline::Response::not_found(),
        }
    });
    r.route_read("users/one", |app, req: &jacqueline::Request| {
        match req.int_param("id") {
            Some(id) => jacqueline::Response::ok(conf::single_user(app, &req.viewer, id)),
            None => jacqueline::Response::not_found(),
        }
    });
    r.route(
        "papers/submit",
        |app, req: &jacqueline::Request| match req.params.get("title") {
            Some(title) => match conf::submit_paper(app, &req.viewer, title) {
                Ok(jid) => jacqueline::Response::ok(jid.to_string()),
                Err(e) => jacqueline::Response::error(&e.to_string()),
            },
            None => jacqueline::Response::not_found(),
        },
    );
    r
}

/// A request mix with writes: every 4th request submits a paper, the
/// rest read user pages — under footprint locks the writes (table
/// `paper`) never block the reads (table `user_profile`).
fn write_mix(n_requests: usize, n_viewers: usize) -> Vec<jacqueline::Request> {
    use jacqueline::Request;
    (0..n_requests)
        .map(|i| {
            let viewer = Viewer::User(1 + (i % n_viewers) as i64);
            match i % 4 {
                0 => Request::new("papers/submit", viewer)
                    .with_param("title", &format!("lock-mix paper {i}")),
                1 => Request::new("users/all", viewer),
                _ => Request::new("users/one", viewer)
                    .with_param("id", &(1 + (i % n_viewers) as i64).to_string()),
            }
        })
        .collect()
}

/// Lock-granularity ablation: executor throughput on a read-only mix
/// vs a 25%-write mix, under footprint-declared per-table locks vs
/// the conservative whole-app lock. On a single core both modes are
/// CPU-bound (the table then measures locking overhead); with ≥2
/// cores the conservative write mix flat-lines while the footprint
/// write mix keeps scaling, because writes to `paper` stop blocking
/// reads of `user_profile`.
fn lock_contention(cfg: &Config, report: &mut Report) {
    println!("\n==== Lock ablation: footprint (per-table) vs conservative (whole-app) ====");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("  [available parallelism: {cores} core(s)]");
    report.record("lock_contention", "available_cores", cores as f64);
    print_row(&[
        "Mix".into(),
        "Threads".into(),
        "footprint".into(),
        "conservative".into(),
    ]);
    let (users, papers, n_requests) = if cfg.smoke {
        (16, 24, 48)
    } else {
        (32, 48, 128)
    };
    let footprint_router = conf::router();
    let conservative_router = conservative_conf_router();
    let mixes: [(&str, Vec<jacqueline::Request>); 2] = [
        (
            "read",
            workload::conference_requests(n_requests, users, papers),
        ),
        ("write25", write_mix(n_requests, users)),
    ];
    // A fresh app per *repetition* (pre-built outside the timed
    // closure), so every rep of a write mix runs against an
    // identically-sized database — reusing one app would let each
    // rep's inserts grow the tables the next rep measures.
    let fresh_apps = |n: usize| -> std::collections::VecDeque<jacqueline::App> {
        (0..n)
            .map(|_| {
                let app = workload::conference(users, papers).app;
                // This table measures *locking* overhead on real
                // renders; the render cache would replay bytes for
                // repeated reads and erase the contention being
                // measured (`render_cache_read_mix` measures the
                // cache itself).
                app.set_render_cache(false);
                app
            })
            .collect()
    };
    for (mix_name, requests) in &mixes {
        for threads in [1usize, 4] {
            let executor = Executor::with_threads(threads);
            // +1: `time_stats` runs one untimed warm-up call.
            let mut apps = fresh_apps(cfg.reps + 1);
            let fp = measure(
                report,
                "lock_contention",
                &format!("mix={mix_name} threads={threads} footprint"),
                cfg.reps,
                || {
                    let app = apps.pop_front().expect("one app per rep");
                    std::hint::black_box(executor.run(&app, &footprint_router, requests));
                },
            );
            let mut apps = fresh_apps(cfg.reps + 1);
            let cons = measure(
                report,
                "lock_contention",
                &format!("mix={mix_name} threads={threads} conservative"),
                cfg.reps,
                || {
                    let app = apps.pop_front().expect("one app per rep");
                    std::hint::black_box(executor.run(&app, &conservative_router, requests));
                },
            );
            print_row(&[
                (*mix_name).to_owned(),
                threads.to_string(),
                format!("{:.0} req/s", n_requests as f64 / fp),
                format!("{:.0} req/s", n_requests as f64 / cons),
            ]);
        }
    }
}

/// Concurrent executor throughput on the conference workload.
///
/// The speedup column is bounded by the machine: on a single-CPU
/// container the best possible result is ≈1.0× (the table then
/// measures pure executor/lock/interner *overhead*); the >1.5×
/// target at 4 threads applies on hardware with ≥4 cores. The
/// available parallelism is printed and recorded so the JSON
/// trajectory stays interpretable across machines.
fn concurrent(cfg: &Config, report: &mut Report) {
    println!("\n==== Fig. 9 (concurrent): executor throughput, conference page mix ====");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("  [available parallelism: {cores} core(s)]");
    report.record("fig9_concurrent", "available_cores", cores as f64);
    print_row(&[
        "Threads".into(),
        "batch".into(),
        "req/s".into(),
        "speedup".into(),
    ]);
    let smoke = cfg.smoke;
    let (users, papers, n_requests) = if smoke { (16, 24, 64) } else { (32, 48, 128) };
    let w = workload::conference(users, papers);
    let app = w.app;
    // Throughput of real renders, not byte replays: with the render
    // cache on, every repeated (page, viewer) pair would be a cache
    // hit and the table would stop measuring executor scaling.
    app.set_render_cache(false);
    let router = conf::router();
    let requests = workload::conference_requests(n_requests, users, papers);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let executor = Executor::with_threads(threads);
        let t = measure(
            report,
            "fig9_concurrent",
            &format!("threads={threads}"),
            cfg.reps,
            || {
                std::hint::black_box(executor.run(&app, &router, &requests));
            },
        );
        let base_t = *base.get_or_insert(t);
        print_row(&[
            threads.to_string(),
            fmt_secs(t),
            format!("{:.0}", n_requests as f64 / t),
            format!("{:.2}x", base_t / t),
        ]);
    }
}

/// Checkpoint/restore latency (`checkpoint_latency`, CI-gated in
/// absolute mode) plus interner growth at the quiescent point
/// (`intern_stats`): medians of [`App::checkpoint_quiescent`] and a
/// cold [`App::restore_from`] on the conference workload at
/// n=256/1024 users (n=256 only under `--smoke`; the committed
/// baseline holds both sizes and the guard compares shared labels).
/// The `intern_stats` table records nodes before/after the
/// checkpoint-time GC and the reclaimed count, so store growth is
/// visible in the `BENCH_results.json` trajectory.
///
/// Reps are floored at 7: checkpoints are milliseconds, and these
/// medians feed a regression gate.
fn checkpoint_latency(cfg: &Config, report: &mut Report) {
    use jacqueline::App;
    println!("\n==== Checkpoint & restore latency (conference workload) ====");
    print_row(&[
        "Users".into(),
        "checkpoint".into(),
        "restore".into(),
        "nodes (pre→post GC)".into(),
    ]);
    let reps = cfg.reps.max(7);
    let sizes: &[usize] = if cfg.smoke { &[256] } else { &[256, 1024] };
    for &n in sizes {
        let dir = std::env::temp_dir().join(format!("jacq_bench_ckpt_{n}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let app = workload::conference(n, n / 4).app;
        // This table's contract (and its absolute CI gate) is the
        // *full* snapshot cost: with incremental mode left on, every
        // timed rep after the first would be a no-write no-op that
        // reuses every chunk. The incremental path gets its own
        // ratio-gated table below.
        app.set_incremental_checkpoints(false);
        // One untimed checkpoint to create the directory and warm the
        // decode cache paths, and to sample the interner stats.
        let stats = app
            .checkpoint_quiescent(&dir)
            .expect("checkpoint the bench workload");
        report.record(
            "intern_stats",
            &format!("users={n} nodes_before_gc"),
            stats.interner_nodes_before as f64,
        );
        report.record(
            "intern_stats",
            &format!("users={n} nodes_after_gc"),
            stats.interner_nodes_after as f64,
        );
        report.record(
            "intern_stats",
            &format!("users={n} gc_reclaimed"),
            stats.gc_reclaimed as f64,
        );
        report.record(
            "intern_stats",
            &format!("users={n} facet_nodes_exported"),
            stats.facet_nodes as f64,
        );
        let t_checkpoint = measure(
            report,
            "checkpoint_latency",
            &format!("users={n} checkpoint"),
            reps,
            || {
                std::hint::black_box(app.checkpoint_quiescent(&dir).expect("checkpoint"));
            },
        );
        // Restore into an app with the models registered but no data —
        // the boot-from-checkpoint path. `restore_from` replaces state
        // wholesale, so repeated restores measure the same work.
        let mut blank = App::new();
        apps::conf::register(&mut blank).expect("register conference models");
        let t_restore = measure(
            report,
            "checkpoint_latency",
            &format!("users={n} restore"),
            reps,
            || {
                std::hint::black_box(blank.restore_from(&dir).expect("restore"));
            },
        );
        print_row(&[
            n.to_string(),
            fmt_secs(t_checkpoint),
            fmt_secs(t_restore),
            format!(
                "{}→{} (-{})",
                stats.interner_nodes_before, stats.interner_nodes_after, stats.gc_reclaimed
            ),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Incremental vs full checkpoint latency (`ckpt_incremental`,
/// CI-gated as an unclamped " incremental"/" full" ratio pair): the
/// conference workload at n=256/1024 users, checkpointed after a
/// 1-row write and after a 25%-of-users write burst, once with the
/// content-addressed dirty-chunk path and once ablated to the full
/// re-export. Only the checkpoint call is timed — the writes between
/// reps alternate values so they are never no-ops (a no-op write
/// bumps no generation and would make the incremental arm a pure
/// chunk-reuse measurement). The headline the gate enforces: the
/// 1-row incremental checkpoint is several times faster than the
/// full export and stays flat as n grows.
fn incremental_checkpoint_latency(cfg: &Config, report: &mut Report) {
    println!("\n==== Incremental vs full checkpoint (conference workload) ====");
    print_row(&[
        "Users".into(),
        "writes".into(),
        "full".into(),
        "incremental".into(),
        "speedup".into(),
    ]);
    let reps = cfg.reps.max(7);
    let sizes: &[usize] = if cfg.smoke { &[256] } else { &[256, 1024] };
    for &n in sizes {
        for (tag, writes) in [("write1", 1usize), ("write25pct", n / 4)] {
            let mut medians = [0.0f64; 2];
            for (slot, mode) in ["full", "incremental"].into_iter().enumerate() {
                let dir = std::env::temp_dir().join(format!(
                    "jacq_bench_ckpt_inc_{n}_{tag}_{mode}_{}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let app = workload::conference(n, n / 4).app;
                app.set_incremental_checkpoints(mode == "incremental");
                // The user jids the write burst rotates over.
                let users: Vec<i64> = (1..=(4 * n as i64))
                    .filter(|&jid| app.get("user_profile", jid).is_ok())
                    .take(writes)
                    .collect();
                assert_eq!(users.len(), writes, "workload has enough user rows");
                // Untimed first checkpoint: seeds the chunk store and
                // (in incremental mode) the carry-over memory.
                app.checkpoint_quiescent(&dir).expect("seed checkpoint");
                let mut samples = Vec::with_capacity(reps);
                for rep in 0..reps {
                    for (i, jid) in users.iter().enumerate() {
                        // Alternating per-rep values: never a no-op.
                        let v = Value::from(format!("aff-{rep}-{i}"));
                        app.update_fields("user_profile", *jid, &[(2, v)], &Default::default())
                            .expect("bench write");
                    }
                    let start = std::time::Instant::now();
                    let stats = app.checkpoint_quiescent(&dir).expect("checkpoint");
                    samples.push(start.elapsed().as_secs_f64());
                    assert_eq!(
                        stats.incremental,
                        mode == "incremental",
                        "checkpoint ran the selected path"
                    );
                }
                samples.sort_by(f64::total_cmp);
                let median = samples[samples.len() / 2];
                report.record(
                    "ckpt_incremental",
                    &format!("users={n} {tag} {mode}"),
                    median,
                );
                medians[slot] = median;
                let _ = std::fs::remove_dir_all(&dir);
            }
            print_row(&[
                n.to_string(),
                tag.into(),
                fmt_secs(medians[0]),
                fmt_secs(medians[1]),
                format!("{:.1}x", medians[0] / medians[1]),
            ]);
        }
    }
}

// ---------------------------------------------------------------------
// The socket path: `--serve` (manual sessions), `--load` (the served
// vs. in-process overhead gate table + the open-loop load harness).
// ---------------------------------------------------------------------

/// `--serve [--port N]`: serve the conference app until killed.
fn serve_blocking(args: &[String]) {
    let port: u16 = args
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| args.get(i + 1))
        .and_then(|p| p.parse().ok())
        .unwrap_or(8099);
    let site = apps::serve::conference_site(workload::conference(64, 96).app);
    let server = Server::bind(site, ("127.0.0.1", port), ServerConfig::default())
        .expect("bind the HTTP server");
    println!("serving the conference app on http://{}", server.addr());
    println!(
        "  login:  curl -X POST 'http://{}/login' -d user=2",
        server.addr()
    );
    println!("  pages:  {:?}", server.site().router.paths());
    println!("(ctrl-c to stop)");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Logs `user` in over the wire, panicking on failure (the harness
/// only ever talks to users its own workload created).
fn logged_in_client(addr: std::net::SocketAddr, user: i64) -> HttpClient {
    let mut client = HttpClient::connect(addr);
    let response = client.login(user);
    assert_eq!(
        response.status,
        200,
        "bench login failed: {}",
        response.text()
    );
    client
}

fn bench_server(users: usize, papers: usize) -> Server {
    let app = workload::conference(users, papers).app;
    // The socket tables measure parse + auth + queue + render +
    // serialize per request; serving repeats from the render cache
    // would collapse the gated served / in-process ratio. The cache's
    // own win is measured by `render_cache_read_mix`.
    app.set_render_cache(false);
    let site = apps::serve::conference_site(app);
    Server::bind(
        site,
        "127.0.0.1:0",
        ServerConfig {
            conn_threads: 8,
            executor_threads: 4,
            read_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .expect("bind the bench server")
}

/// The served / in-process overhead table (`e2e_overhead`): the same
/// conference pages measured through a real TCP round-trip (keep-alive
/// connection, session cookie) and via `Router::handle` on the same
/// app. `bench_guard --prefix e2e_` gates the *ratio* of the two —
/// absolute socket latency varies per machine, the parse + auth +
/// queue + serialize overhead relative to page cost is the number
/// this repo controls. Feeds the CI gate, so reps are floored at 15
/// and the workload size is fixed regardless of `--smoke` — the
/// ratio is size-dependent (socket cost is constant, page cost
/// grows), so smoke and committed runs must measure the same size.
fn served_overhead(cfg: &Config, report: &mut Report) {
    println!("\n==== End-to-end overhead: served (socket) vs in-process dispatch ====");
    let reps = cfg.reps.max(15);
    let (users, papers) = (32, 48);
    let server = bench_server(users, papers);
    let viewer_jid = 2; // a PC member in the workload
    let mut client = logged_in_client(server.addr(), viewer_jid);
    print_row(&[
        "Page".into(),
        "served".into(),
        "in-process".into(),
        "ratio".into(),
    ]);
    for (key, page) in [("papers_all", "papers/all"), ("users_all", "users/all")] {
        let served = measure(
            report,
            "e2e_overhead",
            &format!("{key} served"),
            reps,
            || {
                let response = client.get(page);
                assert_eq!(response.status, 200);
                std::hint::black_box(response.body.len());
            },
        );
        let site = server.site();
        let request = jacqueline::Request::new(page, Viewer::User(viewer_jid));
        let in_process = measure(
            report,
            "e2e_overhead",
            &format!("{key} inprocess"),
            reps,
            || {
                std::hint::black_box(site.router.handle(&site.app, &request));
            },
        );
        print_row(&[
            key.to_owned(),
            fmt_secs(served),
            fmt_secs(in_process),
            format!("{:.2}x", served / in_process),
        ]);
    }
    server.shutdown();
}

/// The open-loop load harness (`served_latency`): requests are
/// dispatched on a **fixed arrival schedule** (`i / rate`), not after
/// the previous response — so server slowdowns surface as queueing
/// delay instead of silently throttling the client (the coordinated-
/// omission trap). Each request records three latencies:
///
/// * `e2e` — completion minus *scheduled* arrival (includes client-
///   side waiting for a free connection: the open-loop number);
/// * `queue` — the executor job queue wait, from `X-Queue-Us`;
/// * `service` — controller execution, from `X-Service-Us`.
fn open_loop_load(cfg: &Config, report: &mut Report) {
    println!("\n==== Open-loop load: conference page mix over HTTP ====");
    let (users, papers, n_requests, clients) = if cfg.smoke {
        (16, 24, 160, 4)
    } else {
        (32, 48, 640, 8)
    };
    let rates: &[f64] = if cfg.smoke { &[200.0] } else { &[100.0, 400.0] };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    report.record("served_latency", "available_cores", cores as f64);
    print_row(&[
        "rate".into(),
        "e2e p50/p99".into(),
        "queue p99".into(),
        "service p50".into(),
    ]);
    for &rate in rates {
        let server = bench_server(users, papers);
        let addr = server.addr();
        let started = Instant::now() + Duration::from_millis(50);
        let mut all: Vec<(f64, f64, f64)> = Vec::with_capacity(n_requests);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = logged_in_client(addr, 1 + (c as i64 % 8));
                        let mut samples = Vec::new();
                        // Client c serves every clients-th arrival of
                        // the shared schedule.
                        for i in (c..n_requests).step_by(clients) {
                            let arrival = started + Duration::from_secs_f64(i as f64 / rate);
                            if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                            let page = match i % 4 {
                                0 => "papers/all".to_owned(),
                                1 => "users/all".to_owned(),
                                2 => format!("papers/one?id={}", 1 + i % papers),
                                _ => format!("users/one?id={}", 1 + i % users),
                            };
                            let response = client.get(&page);
                            let e2e = arrival.elapsed().as_secs_f64();
                            assert_eq!(response.status, 200, "{page}");
                            let micros = |name: &str| {
                                response
                                    .header(name)
                                    .and_then(|v| v.parse::<f64>().ok())
                                    .map_or(0.0, |us| us / 1e6)
                            };
                            samples.push((e2e, micros("x-queue-us"), micros("x-service-us")));
                        }
                        samples
                    })
                })
                .collect();
            for handle in handles {
                all.extend(handle.join().expect("load client panicked"));
            }
        });
        server.shutdown();
        let e2e: Vec<f64> = all.iter().map(|s| s.0).collect();
        let queue: Vec<f64> = all.iter().map(|s| s.1).collect();
        let service: Vec<f64> = all.iter().map(|s| s.2).collect();
        for (kind, samples) in [("e2e", &e2e), ("queue", &queue), ("service", &service)] {
            for q in [50.0, 90.0, 99.0] {
                report.record(
                    "served_latency",
                    &format!("rate={rate:.0} {kind}_p{q:.0}"),
                    percentile(samples, q),
                );
            }
        }
        print_row(&[
            format!("{rate:.0}/s"),
            format!(
                "{:.2}/{:.2}ms",
                percentile(&e2e, 50.0) * 1e3,
                percentile(&e2e, 99.0) * 1e3
            ),
            format!("{:.2}ms", percentile(&queue, 99.0) * 1e3),
            format!("{:.2}ms", percentile(&service, 50.0) * 1e3),
        ]);
    }
}
