//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! Run with `cargo run --release -p jbench --bin experiments -- --all`
//! (or a subset: `--fig6 --fig9a --fig9b --fig9c --table3 --table4
//! --table5`). Output mirrors the paper's rows; absolute times are
//! this machine's, the comparison *shapes* are the reproduction
//! target (see EXPERIMENTS.md).

use apps::{conf, courses, health, workload};
use jacqueline::Viewer;
use jbench::{doubling_sweep, fmt_secs, print_row, time_avg};

/// Matches the paper's protocol: average over 10 sequential requests.
const REPS: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    if want("--fig6") {
        fig6();
    }
    if want("--table3") || want("--fig9a") {
        fig9a_table3();
    }
    if want("--table4") {
        table4();
    }
    if want("--fig9b") {
        fig9b();
    }
    if want("--fig9c") {
        fig9c();
    }
    if want("--table5") {
        table5();
    }
}

/// Figure 6: lines of policy code, Jacqueline vs hand-coded.
fn fig6() {
    println!("\n==== Figure 6: distribution and size of policy code ====");
    for (name, j, v) in [
        ("conference manager", "conf.rs", "conf_vanilla.rs"),
        ("health record manager", "health.rs", "health_vanilla.rs"),
        ("course manager", "courses.rs", "courses_vanilla.rs"),
    ] {
        if let Err(e) = jbench::loc::print_comparison(name, j, v) {
            eprintln!("loc analysis failed for {name}: {e}");
        }
    }
}

/// Figure 9a + Table 3: conference stress tests.
fn fig9a_table3() {
    println!("\n==== Table 3 / Figure 9a: time to view all papers ====");
    print_row(&[
        "# P".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for n in doubling_sweep() {
        let w = workload::conference(32, n);
        let mut app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        let tj = time_avg(REPS, || {
            std::hint::black_box(conf::all_papers(&mut app, &viewer));
        });
        let tv = time_avg(REPS, || {
            std::hint::black_box(vanilla.all_papers(&viewer));
        });
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }

    println!("\n==== Table 3 / Figure 9a: time to view all users ====");
    print_row(&[
        "# U".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for n in doubling_sweep() {
        let w = workload::conference(n, 8);
        let mut app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        let tj = time_avg(REPS, || {
            std::hint::black_box(conf::all_users(&mut app, &viewer));
        });
        let tv = time_avg(REPS, || {
            std::hint::black_box(vanilla.all_users(&viewer));
        });
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Table 4: single paper / single user while the table grows.
fn table4() {
    println!("\n==== Table 4: time to view a single paper ====");
    print_row(&[
        "Papers".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for n in doubling_sweep() {
        let w = workload::conference(32, n);
        let mut app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        let tj = time_avg(REPS, || {
            std::hint::black_box(conf::single_paper(&mut app, &viewer, 1));
        });
        let tv = time_avg(REPS, || {
            std::hint::black_box(vanilla.single_paper(&viewer, 1));
        });
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }

    println!("\n==== Table 4: time to view a single user ====");
    print_row(&[
        "Users".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for n in doubling_sweep() {
        let w = workload::conference(n, 8);
        let mut app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        let tj = time_avg(REPS, || {
            std::hint::black_box(conf::single_user(&mut app, &viewer, 2));
        });
        let tv = time_avg(REPS, || {
            std::hint::black_box(vanilla.single_user(&viewer, 2));
        });
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Figure 9b: health-record stress test.
fn fig9b() {
    println!("\n==== Figure 9b: health records, time to view summaries ====");
    print_row(&[
        "# Users".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for n in doubling_sweep() {
        let w = workload::health(n);
        let mut app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.doctor);
        let tj = time_avg(REPS, || {
            std::hint::black_box(health::all_records_summary(&mut app, &viewer));
        });
        let tv = time_avg(REPS, || {
            std::hint::black_box(vanilla.all_records_summary(&viewer));
        });
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Figure 9c: course-manager stress test (Early Pruning on).
fn fig9c() {
    println!("\n==== Figure 9c: courses, time to view all courses ====");
    print_row(&[
        "# C".into(),
        "Jacq.".into(),
        "Baseline".into(),
        "ratio".into(),
    ]);
    for n in doubling_sweep() {
        let w = workload::courses(n);
        let mut app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.student);
        let tj = time_avg(REPS, || {
            std::hint::black_box(courses::all_courses(&mut app, &viewer));
        });
        let tv = time_avg(REPS, || {
            std::hint::black_box(vanilla.all_courses(&viewer));
        });
        print_row(&[
            n.to_string(),
            fmt_secs(tj),
            fmt_secs(tv),
            format!("{:.2}x", tj / tv),
        ]);
    }
}

/// Table 5: Early Pruning on vs off.
fn table5() {
    println!("\n==== Table 5: all courses, with and without Early Pruning ====");
    print_row(&[
        "Courses".into(),
        "w/o pruning".into(),
        "w/ pruning".into(),
        String::new(),
    ]);
    // Without pruning the page is one faceted string whose leaf count
    // doubles per course; like the paper we stop measuring once it
    // blows up and print "—".
    const NO_PRUNE_MAX: usize = 16;
    for n in [4usize, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let w = workload::courses(n);
        let mut app = w.app;
        let viewer = Viewer::User(w.student);
        let slow = if n <= NO_PRUNE_MAX {
            fmt_secs(time_avg(3, || {
                std::hint::black_box(courses::all_courses_no_pruning(&mut app, &viewer));
            }))
        } else {
            "—".to_owned()
        };
        let fast = fmt_secs(time_avg(REPS, || {
            std::hint::black_box(courses::all_courses(&mut app, &viewer));
        }));
        print_row(&[n.to_string(), slow, fast, String::new()]);
    }
}
