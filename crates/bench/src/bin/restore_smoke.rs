//! CI smoke for the persistence subsystem, over the real socket
//! path: run a server → write through it → checkpoint via the admin
//! route → kill the server and its process state → boot a fresh
//! server from the checkpoint directory → verify reads (and a
//! post-checkpoint log-replayed write) came back byte-identical.
//!
//! Exits non-zero with a message on the first divergence — CI treats
//! this like any failing step.

use std::process::ExitCode;
use std::time::Duration;

use apps::{serve, workload};
use jacqueline::Server;
use jbench::http::HttpClient;

fn check(ok: bool, what: &str) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(what.to_owned())
    }
}

fn run() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("restore_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = jacqueline::ServerConfig {
        conn_threads: 4,
        executor_threads: 4,
        read_timeout: Duration::from_secs(2),
        ..jacqueline::ServerConfig::default()
    };

    // 1. Run: the conference app with persistence enabled.
    let site = serve::conference_site_persistent(workload::conference(8, 6).app, &dir)
        .map_err(|e| format!("building the persistent site: {e}"))?;
    let server = Server::bind(site, "127.0.0.1:0", config).map_err(|e| format!("bind: {e}"))?;
    let mut client = HttpClient::connect(server.addr());
    check(client.login(2).status == 200, "login before the kill")?;

    // 2. Write: one paper before the checkpoint chain, one after
    //    (the last must survive purely via log replay). The site
    //    boot already took a *full* checkpoint, so the admin-route
    //    checkpoints here exercise the incremental path: only dirty
    //    chunks written, clean ones carried over by content hash.
    let submitted = client.post("papers/submit", "title=before+checkpoint");
    check(submitted.status == 200, "pre-checkpoint write accepted")?;
    let checkpoint = client.post("admin/checkpoint", "");
    check(
        checkpoint.status == 200 && checkpoint.text().starts_with("checkpoint:"),
        "admin/checkpoint succeeds for a logged-in session",
    )?;
    println!("restore_smoke: {}", checkpoint.text().trim_end());
    check(
        checkpoint.text().contains("mode=incremental"),
        "checkpoint after the boot-time full one runs incrementally",
    )?;
    check(
        !checkpoint.text().contains("chunks_reused=0 "),
        "an incremental checkpoint of a mostly-clean store reuses chunks",
    )?;
    let mid = client.post("papers/submit", "title=mid+checkpoints");
    check(mid.status == 200, "between-checkpoints write accepted")?;
    let second = client.post("admin/checkpoint", "");
    check(
        second.status == 200 && second.text().contains("mode=incremental"),
        "second checkpoint also incremental",
    )?;
    let health = client.get("admin/health");
    check(
        health.status == 200
            && health.text().contains("checkpoint mode=incremental")
            && health.text().contains("wal records=0"),
        "admin/health reports the checkpoint vector and a compacted WAL",
    )?;
    let late = client.post("papers/submit", "title=after+checkpoint");
    check(late.status == 200, "post-checkpoint write accepted")?;

    // Capture the pages this viewer (and an anonymous one) sees.
    let papers_before = client.get("papers/all");
    let users_before = client.get("users/all");
    let mut anon = HttpClient::connect(server.addr());
    let anon_before = anon.get("papers/all");
    check(papers_before.status == 200, "papers/all before the kill")?;

    // 3. Kill.
    server.shutdown();

    // 4. Restore into fresh process state and serve again.
    let restored_site =
        serve::conference_site_restored(&dir).map_err(|e| format!("boot-from-checkpoint: {e}"))?;
    let restored =
        Server::bind(restored_site, "127.0.0.1:0", config).map_err(|e| format!("bind: {e}"))?;

    // 5. Verify reads: same viewer, same pages, same bytes.
    let mut client = HttpClient::connect(restored.addr());
    check(client.login(2).status == 200, "login after the restore")?;
    let papers_after = client.get("papers/all");
    check(
        papers_after.text() == papers_before.text(),
        "papers/all byte-identical after restore",
    )?;
    check(
        papers_after.text().contains("before checkpoint")
            && papers_after.text().contains("mid checkpoints")
            && papers_after.text().contains("after checkpoint"),
        "the full-snapshotted, incrementally-snapshotted, and log-replayed writes all survived",
    )?;
    let users_after = client.get("users/all");
    check(
        users_after.text() == users_before.text(),
        "users/all byte-identical after restore",
    )?;
    let mut anon = HttpClient::connect(restored.addr());
    check(
        anon.get("papers/all").text() == anon_before.text(),
        "anonymous view byte-identical after restore",
    )?;

    // 6. The restored app keeps working: a fresh write, then read-back.
    let fresh = client.post("papers/submit", "title=post-restore");
    check(fresh.status == 200, "post-restore write accepted")?;
    check(
        client.get("papers/all").text().contains("post-restore"),
        "post-restore write visible",
    )?;
    restored.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("restore_smoke: all checks passed");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(what) => {
            eprintln!("restore_smoke FAILED: {what}");
            ExitCode::FAILURE
        }
    }
}
