//! CI server smoke: start the conference app on an ephemeral port,
//! run the scripted request sequence (login → list → submit →
//! policy-denied view), and assert every status and body — a fast,
//! deterministic end-to-end probe of the whole socket stack
//! (wire parsing → session auth → executor job queue → serialize).
//!
//! Exits non-zero (panics) on the first mismatch, so the CI step
//! fails loudly.

use apps::{serve, workload};
use jacqueline::wire::WireResponse;
use jacqueline::{Server, ServerConfig};
use jbench::http::HttpClient;

fn check(what: &str, response: &WireResponse, status: u16, contains: &str) {
    assert_eq!(
        response.status,
        status,
        "[{what}] expected {status}, got {} ({})",
        response.status,
        response.text()
    );
    assert!(
        response.text().contains(contains),
        "[{what}] body missing {contains:?}:\n{}",
        response.text()
    );
    println!("ok: {what} -> {status}");
}

fn main() {
    let site = serve::conference_site(workload::conference(12, 8).app);
    let server =
        Server::bind(site, "127.0.0.1:0", ServerConfig::default()).expect("bind an ephemeral port");
    let addr = server.addr();
    println!("server smoke on http://{addr}");
    let mut client = HttpClient::connect(addr);

    // 1. Anonymous list: public facets only.
    let page = client.get("papers/all");
    check("anonymous papers/all", &page, 200, "(title hidden)");
    assert!(
        !page.text().contains("faceted systems"),
        "anonymous must not see real titles:\n{}",
        page.text()
    );

    // 2. Login as user 2 (a PC member in the workload) — POST only:
    // a GET must not mint tokens into URLs/logs.
    let refused = client.get("login?user=2");
    check("GET /login", &refused, 405, "requires POST");
    let login = client.login(2);
    check("login user=2", &login, 200, "s");
    let token = login.text();
    assert!(
        login
            .header("set-cookie")
            .is_some_and(|c| c.contains(&token)),
        "login must set the session cookie"
    );

    // 3. The same list through the session: titles visible.
    let page = client.get("papers/all");
    check("pc papers/all", &page, 200, "faceted systems");
    assert!(
        page.header("x-queue-us").is_some() && page.header("x-service-us").is_some(),
        "served responses report queue/service latency"
    );

    // 4. Submit a paper through the session.
    let submit = client.post("papers/submit", "title=Smoke+test+paper");
    check("papers/submit", &submit, 200, "");
    let jid: i64 = submit.text().parse().expect("submit returns the new jid");
    let mine = client.get(&format!("papers/one?id={jid}"));
    check(
        "papers/one (own submission)",
        &mine,
        200,
        "Smoke test paper",
    );

    // 5. Policy-denied requests: anonymous submit, forged token.
    let mut anon = HttpClient::connect(addr);
    let denied = anon.post("papers/submit", "title=sneaky");
    check("anonymous submit", &denied, 403, "login session");
    anon.set_token(Some("forged-token".to_owned()));
    let forged = anon.get("papers/all");
    check("forged token", &forged, 403, "invalid or expired");

    // 6. Error statuses stay distinct on the wire.
    let missing = client.get("papers/one");
    check("missing id param", &missing, 400, "numeric id");
    let unknown = client.get("no/such/route");
    check("unknown route", &unknown, 404, "not found");
    let bad_method = client.get("papers/submit");
    check("GET on a write route", &bad_method, 405, "requires POST");

    server.shutdown();
    println!("server smoke: all checks passed");
}
