//! Figure 6: lines-of-code analysis of the two conference-manager
//! implementations (and the other case studies).
//!
//! Policy code is delimited by `// <policy>` / `// </policy>` markers
//! in the application sources; `// [section: models]` and
//! `// [section: views]` split each file the way the paper splits
//! `models.py` / `views.py`.

use std::fmt;
use std::path::Path;

/// Line counts for one section of one implementation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SectionCounts {
    /// Policy lines (inside `<policy>` regions).
    pub policy: usize,
    /// Non-policy, non-blank code lines.
    pub non_policy: usize,
}

impl SectionCounts {
    /// Total lines in the section.
    #[must_use]
    pub fn total(&self) -> usize {
        self.policy + self.non_policy
    }
}

/// The Figure 6 numbers for one implementation (one source file).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LocReport {
    /// The models section (`models.py`).
    pub models: SectionCounts,
    /// The views section (`views.py`).
    pub views: SectionCounts,
}

impl LocReport {
    /// Total policy lines across both sections.
    #[must_use]
    pub fn policy_total(&self) -> usize {
        self.models.policy + self.views.policy
    }

    /// The auditable surface: every line of a section that contains
    /// any policy code (the paper's trusted-computing-base argument —
    /// auditing `models.py` alone vs `models.py` + `views.py`).
    #[must_use]
    pub fn audit_surface(&self) -> usize {
        let mut total = 0;
        if self.models.policy > 0 {
            total += self.models.total();
        }
        if self.views.policy > 0 {
            total += self.views.total();
        }
        total
    }
}

impl fmt::Display for LocReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "models: {} policy / {} other; views: {} policy / {} other",
            self.models.policy, self.models.non_policy, self.views.policy, self.views.non_policy
        )
    }
}

/// Analyzes one application source file.
///
/// Counts non-blank, non-test lines (everything up to a `#[cfg(test)]`
/// module), classifying by the `<policy>` markers and the
/// `[section: …]` markers. Marker lines themselves are not counted.
#[must_use]
pub fn analyze_source(source: &str) -> LocReport {
    let mut report = LocReport::default();
    let mut in_policy = false;
    let mut in_views = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.contains("#[cfg(test)]") {
            break; // tests are not application code
        }
        if trimmed.contains("// [section: views]") {
            in_views = true;
            continue;
        }
        if trimmed.contains("// [section: models]") {
            in_views = false;
            continue;
        }
        if trimmed.contains("// <policy>") {
            in_policy = true;
            continue;
        }
        if trimmed.contains("// </policy>") {
            in_policy = false;
            continue;
        }
        if trimmed.is_empty() {
            continue;
        }
        let section = if in_views {
            &mut report.views
        } else {
            &mut report.models
        };
        if in_policy {
            section.policy += 1;
        } else {
            section.non_policy += 1;
        }
    }
    report
}

/// Analyzes a source file on disk.
///
/// # Errors
///
/// I/O errors reading the file.
pub fn analyze_file(path: &Path) -> std::io::Result<LocReport> {
    Ok(analyze_source(&std::fs::read_to_string(path)?))
}

/// Locates the `crates/apps/src` directory relative to the workspace.
#[must_use]
pub fn apps_src_dir() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the apps sources are a sibling.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../apps/src")
        .canonicalize()
        .unwrap_or_else(|_| Path::new("crates/apps/src").to_path_buf())
}

/// Prints the Figure 6 comparison for one case-study pair.
///
/// # Errors
///
/// I/O errors reading the sources.
pub fn print_comparison(
    name: &str,
    jacqueline_file: &str,
    vanilla_file: &str,
) -> std::io::Result<()> {
    let dir = apps_src_dir();
    let jacq = analyze_file(&dir.join(jacqueline_file))?;
    let van = analyze_file(&dir.join(vanilla_file))?;
    println!("--- {name} ---");
    println!("                         models(policy/other)   views(policy/other)   policy total   audit surface");
    for (label, r) in [("Jacqueline", jacq), ("hand-coded", van)] {
        println!(
            "  {label:<12} {:>10} / {:<6} {:>12} / {:<6} {:>10} {:>14}",
            r.models.policy,
            r.models.non_policy,
            r.views.policy,
            r.views.non_policy,
            r.policy_total(),
            r.audit_surface(),
        );
    }
    println!(
        "  => Jacqueline confines policy to models: {} views-policy lines vs {} in the baseline",
        jacq.views.policy, van.views.policy
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
use x;
// [section: models]
fn model() {
    // <policy>
    check();
    more_check();
    // </policy>
    plain();
}
// [section: views]
fn view() {
    // <policy>
    inline_check();
    // </policy>
    render();
}
#[cfg(test)]
mod tests { fn ignored() {} }
";

    #[test]
    fn sample_counts() {
        let r = analyze_source(SAMPLE);
        assert_eq!(r.models.policy, 2);
        // `use x;`, `fn model() {`, `plain();`, `}` = 4 non-policy.
        assert_eq!(r.models.non_policy, 4);
        assert_eq!(r.views.policy, 1);
        assert_eq!(r.views.non_policy, 3);
        assert_eq!(r.policy_total(), 3);
        assert_eq!(r.audit_surface(), 6 + 4);
    }

    #[test]
    fn real_sources_have_expected_shape() {
        let dir = apps_src_dir();
        let jacq = analyze_file(&dir.join("conf.rs")).unwrap();
        let van = analyze_file(&dir.join("conf_vanilla.rs")).unwrap();
        // The paper's headline claims, structurally:
        // 1. Jacqueline has no policy code in views — the paper's
        //    centralization claim.
        assert_eq!(jacq.views.policy, 0, "jacqueline views must be policy-free");
        // 2. The baseline has policy code in *both* sections
        //    (repeated checks at call sites, Figure 8).
        assert!(van.views.policy > 0);
        assert!(van.models.policy > 0);
        // 3. The audit surface shrinks: auditing Jacqueline means the
        //    models section only; the baseline needs the whole file.
        assert!(jacq.audit_surface() < van.audit_surface());
        // Note: absolute policy-line totals are close in this Rust
        // rendition (closure boilerplate — cf. the paper's own remark
        // that "Jacqueline counts are bloated"); the per-view marginal
        // policy cost is the durable difference: zero for Jacqueline,
        // one region per protected field per view for the baseline.
    }

    #[test]
    fn all_case_studies_analyzable() {
        let dir = apps_src_dir();
        for f in [
            "conf.rs",
            "conf_vanilla.rs",
            "health.rs",
            "health_vanilla.rs",
            "courses.rs",
            "courses_vanilla.rs",
        ] {
            let r = analyze_file(&dir.join(f)).unwrap();
            assert!(r.models.total() > 0, "{f} has content");
            assert!(r.policy_total() > 0, "{f} declares policies");
        }
    }
}
