//! `jbench` — shared infrastructure for the evaluation harness.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's §6 (run with `--release`); the criterion benches under
//! `benches/` track the same workloads for regression purposes; and
//! `loc_report` reproduces the Figure 6 lines-of-code analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loc;

use std::time::Instant;

/// Average seconds over `reps` sequential runs of `f` — the paper's
/// measurement protocol ("average over 10 rapid sequential requests",
/// §6.3).
pub fn time_avg(reps: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up run outside the measurement.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// The paper's doubling sweep: 8, 16, …, 1024.
#[must_use]
pub fn doubling_sweep() -> Vec<usize> {
    (3..=10).map(|i| 1usize << i).collect()
}

/// Formats seconds the way the paper's tables do (e.g. `0.241s`).
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.6}s")
}

/// Prints one table row with aligned columns.
pub fn print_row(cols: &[String]) {
    let widths = [8, 14, 14, 10];
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:>w$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_doubling() {
        assert_eq!(doubling_sweep(), vec![8, 16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn time_avg_is_positive() {
        let t = time_avg(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.2414), "0.241400s");
    }
}
