//! `jbench` — shared infrastructure for the evaluation harness.
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's §6 (run with `--release`); the criterion benches under
//! `benches/` track the same workloads for regression purposes; and
//! `loc_report` reproduces the Figure 6 lines-of-code analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod http;
pub mod loc;
pub mod report;

use std::time::Instant;

pub use report::Report;

/// Average and median seconds over `reps` timed runs of `f`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TimeStats {
    /// Mean of the per-run wall-clock times.
    pub avg_s: f64,
    /// Median of the per-run wall-clock times (what
    /// `BENCH_results.json` records — robust to scheduler noise).
    pub median_s: f64,
}

/// Times `reps` sequential runs of `f` (after one warm-up run),
/// returning both the paper-protocol average and the median.
pub fn time_stats(reps: usize, mut f: impl FnMut()) -> TimeStats {
    // One warm-up run outside the measurement.
    f();
    let mut samples = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    let avg_s = samples.iter().sum::<f64>() / samples.len() as f64;
    samples.sort_by(f64::total_cmp);
    TimeStats {
        avg_s,
        median_s: samples[samples.len() / 2],
    }
}

/// Average seconds over `reps` sequential runs of `f` — the paper's
/// measurement protocol ("average over 10 rapid sequential requests",
/// §6.3).
pub fn time_avg(reps: usize, f: impl FnMut()) -> f64 {
    time_stats(reps, f).avg_s
}

/// The paper's doubling sweep: 8, 16, …, 1024.
#[must_use]
pub fn doubling_sweep() -> Vec<usize> {
    (3..=10).map(|i| 1usize << i).collect()
}

/// The `q`-th percentile (0–100, nearest-rank) of a sample set. The
/// open-loop load harness reports latency distributions with this.
///
/// # Panics
///
/// Panics on an empty sample set — percentiles of nothing are a
/// harness bug, not a value.
#[must_use]
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Formats seconds the way the paper's tables do (e.g. `0.241s`).
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.6}s")
}

/// Prints one table row with aligned columns.
pub fn print_row(cols: &[String]) {
    let widths = [8, 14, 14, 10];
    let mut line = String::new();
    for (i, c) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        line.push_str(&format!("{c:>w$}  "));
    }
    println!("{}", line.trim_end());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_doubling() {
        assert_eq!(doubling_sweep(), vec![8, 16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn time_avg_is_positive() {
        let t = time_avg(3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.2414), "0.241400s");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 50.0), 51.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
