//! Machine-readable benchmark results.
//!
//! The `experiments` binary prints the paper-style tables *and*
//! records per-table medians here, emitting a `BENCH_results.json`
//! so successive PRs accumulate a perf trajectory (CI archives the
//! file as an artifact). The JSON is hand-rolled: the build
//! environment is offline, so no serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One measured row of a table.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Row label, e.g. `"papers=64 jacqueline"`.
    pub label: String,
    /// Median seconds over the measurement repetitions.
    pub median_s: f64,
}

/// A collection of benchmark tables, each a list of labelled medians.
#[derive(Clone, Debug, Default)]
pub struct Report {
    tables: BTreeMap<String, Vec<Entry>>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Report {
        Report::default()
    }

    /// Records one measurement under `table`.
    pub fn record(&mut self, table: &str, label: &str, median_s: f64) {
        self.tables
            .entry(table.to_owned())
            .or_default()
            .push(Entry {
                label: label.to_owned(),
                median_s,
            });
    }

    /// The recorded entries of a table, if any (used by assertions in
    /// tests and by the summary printer).
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&[Entry]> {
        self.tables.get(name).map(Vec::as_slice)
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Renders the report as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"jacqueline-bench/1\",\n  \"tables\": {");
        for (ti, (table, entries)) in self.tables.iter().enumerate() {
            if ti > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: [", json_string(table));
            for (ei, e) in entries.iter().enumerate() {
                if ei > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"label\": {}, \"median_s\": {}}}",
                    json_string(&e.label),
                    json_number(e.median_s)
                );
            }
            out.push_str("\n    ]");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a document produced by [`Report::to_json`] (the
    /// regression guard reads the committed `BENCH_results.json` with
    /// this). Line-oriented: it understands exactly the shape this
    /// module emits — one table header or one `{"label": …,
    /// "median_s": …}` entry per line — which is all it needs, since
    /// both sides of the comparison are written by this module.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_json(text: &str) -> Result<Report, String> {
        let mut report = Report::new();
        let mut current: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim().trim_end_matches(',');
            if let Some(rest) = line.strip_prefix('"') {
                // `"table": [`  or the schema line `"schema": "…"`.
                let Some((name, tail)) = rest.split_once('"') else {
                    return Err(format!("line {}: unterminated name", lineno + 1));
                };
                if tail.trim_start().starts_with(": [") {
                    current = Some(name.to_owned());
                }
            } else if line.starts_with("{\"label\":") {
                let table = current
                    .clone()
                    .ok_or_else(|| format!("line {}: entry outside a table", lineno + 1))?;
                let label = line
                    .split_once("\"label\": \"")
                    .and_then(|(_, t)| t.split_once('"'))
                    .map(|(l, _)| l.to_owned())
                    .ok_or_else(|| format!("line {}: no label", lineno + 1))?;
                let median: f64 = line
                    .split_once("\"median_s\": ")
                    .map(|(_, t)| t.trim_end_matches(['}', ',']).trim())
                    .ok_or_else(|| format!("line {}: no median_s", lineno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad median_s ({e})", lineno + 1))?;
                report.record(&table, &label, median);
            }
        }
        if report.is_empty() {
            return Err("no tables found (is this a jacqueline-bench JSON?)".to_owned());
        }
        Ok(report)
    }

    /// Names of all recorded tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

/// Minimal JSON string escaping (labels are ASCII identifiers, but be
/// correct anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity; clamp to null for robustness.
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.9}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut r = Report::new();
        r.record("table5", "n=4 pruned", 0.001);
        r.record("table5", "n=4 unpruned", 0.25);
        r.record("fig9_concurrent", "threads=1", 1.0);
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"jacqueline-bench/1\""));
        assert!(json.contains("\"table5\": ["));
        assert!(json.contains("{\"label\": \"n=4 pruned\", \"median_s\": 0.001000000}"));
        assert!(json.contains("\"fig9_concurrent\""));
        assert_eq!(r.table("table5").unwrap().len(), 2);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn parse_inverts_to_json() {
        let mut r = Report::new();
        r.record("table3_users", "users=8 jacqueline", 0.000052216);
        r.record("table3_users", "users=8 baseline", 0.00001191);
        r.record("fig9_concurrent", "available_cores", 1.0);
        let parsed = Report::parse_json(&r.to_json()).unwrap();
        assert_eq!(parsed.table("table3_users"), r.table("table3_users"));
        assert_eq!(
            parsed.table_names(),
            vec!["fig9_concurrent", "table3_users"]
        );
        assert!(Report::parse_json("{}").is_err());
    }

    #[test]
    fn round_trips_to_disk() {
        let mut r = Report::new();
        r.record("t", "row", 0.5);
        let path = std::env::temp_dir().join("jbench_report_test.json");
        r.write_json(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.to_json());
        let _ = std::fs::remove_file(&path);
    }
}
