//! A minimal keep-alive HTTP client over jacqueline's wire layer,
//! shared by the open-loop load harness (`experiments --load`) and
//! the CI smoke script (`server_smoke`) — one implementation of
//! connect + session cookie + request formatting instead of one per
//! binary. (The `server_e2e` integration tests keep their own raw
//! clients on purpose: they test the byte format itself.)

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use jacqueline::wire::{read_response, WireResponse};

/// One keep-alive connection, optionally carrying a session token.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    token: Option<String>,
}

impl HttpClient {
    /// Connects (30s read timeout — harness servers answer in
    /// microseconds; a longer wait means something is wedged).
    ///
    /// # Panics
    ///
    /// Panics if the server is unreachable — these clients only ever
    /// talk to a server the same process just started.
    #[must_use]
    pub fn connect(addr: SocketAddr) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect to the harness server");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        HttpClient {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            stream,
            token: None,
        }
    }

    /// Overrides the session token (e.g. to present a forged one).
    pub fn set_token(&mut self, token: Option<String>) {
        self.token = token;
    }

    fn cookie_header(&self) -> String {
        self.token
            .as_ref()
            .map_or_else(String::new, |t| format!("Cookie: session={t}\r\n"))
    }

    fn round_trip(&mut self, raw: String) -> WireResponse {
        self.stream
            .write_all(raw.as_bytes())
            .expect("write request to the harness server");
        read_response(&mut self.reader).expect("read harness response")
    }

    /// `GET /{page}` with the session cookie, on the keep-alive
    /// connection.
    ///
    /// # Panics
    ///
    /// Panics on transport failures (never on HTTP error statuses).
    pub fn get(&mut self, page: &str) -> WireResponse {
        let raw = format!(
            "GET /{page} HTTP/1.1\r\nHost: harness\r\n{}\r\n",
            self.cookie_header()
        );
        self.round_trip(raw)
    }

    /// `POST /{page}` with a form body and the session cookie.
    ///
    /// # Panics
    ///
    /// Panics on transport failures (never on HTTP error statuses).
    pub fn post(&mut self, page: &str, form: &str) -> WireResponse {
        let raw = format!(
            "POST /{page} HTTP/1.1\r\nHost: harness\r\n{}\
             Content-Type: application/x-www-form-urlencoded\r\n\
             Content-Length: {}\r\n\r\n{form}",
            self.cookie_header(),
            form.len()
        );
        self.round_trip(raw)
    }

    /// POSTs `login` for `user`; on success the minted token is kept
    /// and sent as the session cookie on every later request.
    pub fn login(&mut self, user: i64) -> WireResponse {
        let response = self.post("login", &format!("user={user}"));
        if response.status == 200 {
            self.token = Some(response.text());
        }
        response
    }
}
