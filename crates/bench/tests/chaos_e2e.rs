//! The pinned chaos seeds CI runs on every push: three deterministic
//! fault/kill/restore interleavings over the three applications (see
//! `jbench::chaos` for the scenario generator and its oracles).
//!
//! The seeds run **sequentially inside one test** on purpose: the
//! fault-injection registry is process-global, and arming a fault
//! point replaces any prior plan for that point — parallel seeds
//! would disarm each other.

#[test]
fn pinned_chaos_seeds_hold_every_invariant() {
    for seed in [1, 7, 0xc4a0] {
        let report = jbench::chaos::run_seed(seed)
            .unwrap_or_else(|violation| panic!("chaos seed {seed}: {violation}"));
        println!("{report}");
        assert!(report.kills >= 3, "every app gets killed at least once");
        assert!(report.degraded_arcs >= 3, "every app degrades + recovers");
        assert!(report.sheds > 0, "the flood stage must shed");
        assert!(report.writes_ok > 0, "scenarios must land real writes");
        assert!(report.grid_cells_checked > 0);
        assert!(
            report.fragment_repairs > 0,
            "with fragments on, the repair probe must repair entries in place"
        );
    }
}

/// The fragment-repair knob under chaos: the same pinned seed runs
/// once with repair enabled (entries spliced back together from the
/// journal survive kill/restore and degraded-mode arcs byte-identical
/// to uncached renders) and once ablated (bit-identical interleaving,
/// zero repairs, every stale entry paying a full re-render). Runs
/// sequentially after the sweep above for the same global-fault-
/// registry reason.
#[test]
fn pinned_fragment_seed_repairs_and_its_ablation_does_not() {
    let seed = 0xf4a6;
    let on = jbench::chaos::run_seed_with_fragments(seed, true)
        .unwrap_or_else(|violation| panic!("chaos seed {seed} (fragments on): {violation}"));
    println!("{on}");
    assert!(
        on.fragment_repairs > 0,
        "the conference repair probe must repair its warm list page"
    );
    assert!(on.kills >= 3 && on.degraded_arcs >= 3);
    let off = jbench::chaos::run_seed_with_fragments(seed, false)
        .unwrap_or_else(|violation| panic!("chaos seed {seed} (fragments off): {violation}"));
    println!("{off}");
    assert_eq!(
        off.fragment_repairs, 0,
        "the ablated arm never repairs — it discards and re-renders"
    );
    assert_eq!(
        (off.steps, off.kills, off.checkpoints),
        (on.steps, on.kills, on.checkpoints),
        "the knob never draws from the RNG: both arms replay one interleaving"
    );
}

/// The incremental-checkpoint knob under chaos: the same pinned seed
/// runs once with dirty-chunk-only checkpoints (the default) and
/// once ablated (`--no-incremental`: every checkpoint re-exports the
/// full snapshot). Both arms run under the executor's record-
/// pressure checkpoint scheduler, so scheduled checkpoints interleave
/// with kills, restores, injected faults, and degraded arcs — and
/// every recovery oracle (grid identity, exactly-once markers,
/// physical rows) must hold in both. Sequential after the tests
/// above for the global-fault-registry reason.
#[test]
fn pinned_incremental_seed_matches_its_full_snapshot_ablation() {
    let seed = 0x1c4e;
    let on = jbench::chaos::run_seed_configured(seed, true, true)
        .unwrap_or_else(|violation| panic!("chaos seed {seed} (incremental on): {violation}"));
    println!("{on}");
    assert!(
        on.scheduled_checkpoints > 0,
        "record pressure must trigger scheduled checkpoints during the run"
    );
    assert!(on.kills >= 3 && on.degraded_arcs >= 3 && on.checkpoints > 0);
    let off = jbench::chaos::run_seed_configured(seed, true, false)
        .unwrap_or_else(|violation| panic!("chaos seed {seed} (incremental off): {violation}"));
    println!("{off}");
    assert!(
        off.scheduled_checkpoints > 0,
        "the full-snapshot arm schedules checkpoints too"
    );
    assert_eq!(
        (off.steps, off.kills, off.checkpoints),
        (on.steps, on.kills, on.checkpoints),
        "the knob never draws from the RNG: both arms replay one interleaving"
    );
}
