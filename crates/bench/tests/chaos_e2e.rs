//! The pinned chaos seeds CI runs on every push: three deterministic
//! fault/kill/restore interleavings over the three applications (see
//! `jbench::chaos` for the scenario generator and its oracles).
//!
//! The seeds run **sequentially inside one test** on purpose: the
//! fault-injection registry is process-global, and arming a fault
//! point replaces any prior plan for that point — parallel seeds
//! would disarm each other.

#[test]
fn pinned_chaos_seeds_hold_every_invariant() {
    for seed in [1, 7, 0xc4a0] {
        let report = jbench::chaos::run_seed(seed)
            .unwrap_or_else(|violation| panic!("chaos seed {seed}: {violation}"));
        println!("{report}");
        assert!(report.kills >= 3, "every app gets killed at least once");
        assert!(report.degraded_arcs >= 3, "every app degrades + recovers");
        assert!(report.sheds > 0, "the flood stage must shed");
        assert!(report.writes_ok > 0, "scenarios must land real writes");
        assert!(report.grid_cells_checked > 0);
    }
}
