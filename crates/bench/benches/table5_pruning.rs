//! Table 5: the Early Pruning ablation — "show all courses" with the
//! session-based pruned path vs the fully faceted page (one faceted
//! string whose leaf count doubles per course). The no-pruning
//! variant is only run at small sizes; beyond that it blows up,
//! matching the paper's `—` rows.

use apps::{courses, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jacqueline::Viewer;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_pruning");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let w = workload::courses(n);
        let app = w.app;
        let viewer = Viewer::User(w.student);
        group.bench_with_input(BenchmarkId::new("with_pruning", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(courses::all_courses(&app, &viewer)));
        });
        group.bench_with_input(BenchmarkId::new("without_pruning", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(courses::all_courses_no_pruning(&app, &viewer)));
        });
    }
    // The pruned path keeps scaling linearly where the unpruned path
    // cannot run at all.
    for n in [64usize, 256] {
        let w = workload::courses(n);
        let app = w.app;
        let viewer = Viewer::User(w.student);
        group.bench_with_input(BenchmarkId::new("with_pruning", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(courses::all_courses(&app, &viewer)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
