//! Figure 9b: health-record stress test — time to view all record
//! summaries as the number of users doubles.

use apps::{health, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jacqueline::Viewer;

const SIZES: [usize; 3] = [8, 64, 256];

fn bench_records(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_all_records");
    group.sample_size(10);
    for n in SIZES {
        let w = workload::health(n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.doctor);
        group.bench_with_input(BenchmarkId::new("jacqueline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(health::all_records_summary(&app, &viewer)));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(vanilla.all_records_summary(&viewer)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_records);
criterion_main!(benches);
