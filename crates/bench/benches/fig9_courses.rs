//! Figure 9c: course-manager stress test — time to view all courses
//! (with instructor lookups) as the course count doubles; Early
//! Pruning is on, keeping the page linear.

use apps::{courses, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jacqueline::Viewer;

const SIZES: [usize; 3] = [8, 64, 256];

fn bench_courses(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9c_all_courses");
    group.sample_size(10);
    for n in SIZES {
        let w = workload::courses(n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.student);
        group.bench_with_input(BenchmarkId::new("jacqueline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(courses::all_courses(&app, &viewer)));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(vanilla.all_courses(&viewer)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_courses);
criterion_main!(benches);
