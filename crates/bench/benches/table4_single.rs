//! Table 4: representative actions — time to view a *single* paper
//! and a single user profile while the underlying tables grow. The
//! paper's observation: flat in table size, and Jacqueline can beat
//! the baseline on single-paper because it resolves each policy once.

use apps::{conf, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jacqueline::Viewer;

const SIZES: [usize; 3] = [8, 64, 256];

fn bench_single_paper(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_single_paper");
    group.sample_size(10);
    for n in SIZES {
        let w = workload::conference(32, n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        group.bench_with_input(BenchmarkId::new("jacqueline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(conf::single_paper(&app, &viewer, 1)));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(vanilla.single_paper(&viewer, 1)));
        });
    }
    group.finish();
}

fn bench_single_user(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_single_user");
    group.sample_size(10);
    for n in SIZES {
        let w = workload::conference(n, 8);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        group.bench_with_input(BenchmarkId::new("jacqueline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(conf::single_user(&app, &viewer, 2)));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(vanilla.single_user(&viewer, 2)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_paper, bench_single_user);
criterion_main!(benches);
