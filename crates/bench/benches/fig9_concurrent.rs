//! Fig. 9 (concurrent variant): throughput of the request executor on
//! the conference workload at 1/2/4/8 worker threads. The read-only
//! page mix dispatches in parallel under per-table footprint locks;
//! the target of the refactor is >1.5× throughput at 4 threads vs 1.

use apps::{conf, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jacqueline::Executor;

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_concurrent");
    group.sample_size(10);
    let w = workload::conference(32, 48);
    let app = w.app;
    let router = conf::router();
    let requests = workload::conference_requests(128, 32, 48);
    for threads in [1usize, 2, 4, 8] {
        let executor = Executor::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| std::hint::black_box(executor.run(&app, &router, &requests)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_concurrent);
criterion_main!(benches);
