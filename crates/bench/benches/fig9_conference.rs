//! Figure 9a / Table 3: conference-manager stress tests — time to
//! view all papers and all users, Jacqueline vs the hand-coded
//! baseline, as the row count doubles.

use apps::{conf, workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jacqueline::Viewer;

const SIZES: [usize; 3] = [8, 64, 256];

fn bench_all_papers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_all_papers");
    group.sample_size(10);
    for n in SIZES {
        let w = workload::conference(32, n);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.pc_member);
        group.bench_with_input(BenchmarkId::new("jacqueline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(conf::all_papers(&app, &viewer)));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(vanilla.all_papers(&viewer)));
        });
    }
    group.finish();
}

fn bench_all_users(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_all_users");
    group.sample_size(10);
    for n in SIZES {
        let w = workload::conference(n, 8);
        let app = w.app;
        let mut vanilla = w.vanilla;
        let viewer = Viewer::User(w.author);
        group.bench_with_input(BenchmarkId::new("jacqueline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(conf::all_users(&app, &viewer)));
        });
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(vanilla.all_users(&viewer)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_papers, bench_all_users);
criterion_main!(benches);
